//===- FaultTolerance.h - Fig. 5 fault-tolerance meta-protocol --*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's novel fault-tolerance analysis (Sec. 2.7, Fig. 5): an
/// NV-to-NV transform that lifts a protocol's attribute A to
/// dict[K, A], where each key of K is one failure scenario. The transfer
/// function uses mapIte to drop the route in exactly the scenarios whose
/// failed links (or node) affect the edge being traversed; merge becomes a
/// pointwise combine. One simulation then computes the routes of *every*
/// scenario at once, with MTBDD sharing collapsing scenarios that behave
/// alike (Fig. 4's pod locality).
///
/// Scenario keys:
///   LinkFailures = 1, no node:  K = edge
///   LinkFailures = k:           K = (edge, ..., edge)   (k components)
///   NodeFailure  = true:        K = (node, edge, ...)
///
/// A key containing the same link twice models a smaller failure set, so
/// the key space covers "at most k failures". Keys naming non-topology
/// links behave like the failure-free scenario and share leaves.
///
//===----------------------------------------------------------------------===//

#ifndef NV_ANALYSIS_FAULTTOLERANCE_H
#define NV_ANALYSIS_FAULTTOLERANCE_H

#include "core/Ast.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"
#include "support/Resume.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <optional>

namespace nv {

struct FtOptions {
  unsigned LinkFailures = 1; ///< Link components in the scenario key.
  bool NodeFailure = false;  ///< Also fail one node per scenario.
  /// NV source of the "dropped route" value (Fig. 5 uses None; override
  /// for protocols whose attribute is not an option).
  std::string DropValueSource = "None";
  /// Worker threads for the per-scenario assert check (1 = serial; 0 =
  /// NV_THREADS / hardware concurrency). The meta-simulation itself is one
  /// fixpoint and stays single-threaded.
  unsigned Threads = 1;
  /// Resource budget for the whole analysis (transform, meta-simulation,
  /// assert check). Budget.MaxSteps bounds the meta-simulation's pops:
  /// non-monotone policies (e.g. BGP community filters) can oscillate
  /// under some failure scenarios, and an oscillating meta-sim grows
  /// fresh MTBDD leaves every round — bound it and report Converged =
  /// false instead of diverging. Subsumes the old MaxSteps field; a
  /// deadline, MTBDD node budget, heap watermark, or shared CancelToken
  /// compose the same way.
  RunBudget Budget{/*DeadlineMs=*/0, /*MaxSteps=*/100'000'000};
  /// Per-scenario retry for transient trips (deadline, step/node budget,
  /// injected fault): each retry re-runs the scenario with the budget's
  /// finite limits escalated. Default MaxAttempts=1 keeps single-shot
  /// semantics.
  RetryPolicy Retry;
  /// Scenarios per check chunk in the checkpointed and fleet-sharded
  /// paths: chunks are the journal/fleet unit of the assert check ("c<C>"
  /// keys), so this changes the unit list and binds in the journal.
  unsigned CheckChunkSize = 512;
  /// Optional checkpoint/resume journal. When set, scenarios completed in
  /// a previous run are replayed instead of re-simulated, and each newly
  /// completed scenario (or scenario chunk, in checkFaultTolerance) is
  /// durably recorded. Canceled scenarios are never recorded, so they
  /// re-run on resume. The caller owns binding validation (ResumeLog::
  /// open rejects mismatched journals).
  ResumeLog *Resume = nullptr;
};

/// Builds the fault-tolerant meta-program: the input's init/trans/merge
/// (and assert) are renamed to __base_* and wrapped per Fig. 5. The result
/// is parsed from generated NV source and type-checked; null on failure
/// (diagnostics filed). \p P must already be type-checked (AttrType set).
std::optional<Program> makeFaultTolerantProgram(const Program &P,
                                                const FtOptions &Opts,
                                                DiagnosticEngine &Diags);

/// One concrete failure scenario.
struct FtScenario {
  std::vector<std::pair<uint32_t, uint32_t>> Links; ///< LinkFailures entries.
  std::optional<uint32_t> Node;

  std::string str() const;
};

/// Enumerates all scenarios of the key space that name real topology
/// links (combinations with repetition, covering "at most k" failures).
std::vector<FtScenario> enumerateScenarios(const Program &P,
                                           const FtOptions &Opts);

/// The dict key value of a scenario.
const Value *scenarioKey(NvContext &Ctx, const FtScenario &S,
                         const FtOptions &Opts);

struct FtViolation {
  FtScenario Scenario;
  uint32_t Node;
  const Value *Route; ///< The route selected under the scenario; null when
                      ///< the violation was replayed from a journal.
  /// The route's rendering, recorded at completion time. Journal replay
  /// reconstructs violations from text (the originating arena is gone), so
  /// reporting must go through routeStr(), which is identical for live and
  /// replayed violations.
  std::string RouteText;

  std::string routeStr() const;
};

/// Serializes one violation into \p R as a "v" field
/// ("<scenarioIdx> <node> <routeText>").
void addViolationField(UnitRecord &R, size_t ScenarioIdx,
                       const FtViolation &V);
/// Parses every "v" field of \p R back into (scenarioIdx, violation) pairs
/// (Route null, RouteText filled, Scenario resolved from \p Scenarios).
/// Returns false on malformed fields or out-of-range scenario indices.
bool parseViolationFields(const UnitRecord &R,
                          const std::vector<FtScenario> &Scenarios,
                          std::vector<std::pair<size_t, FtViolation>> &Out);

struct FtCheckResult {
  uint64_t ScenariosChecked = 0;
  /// Scenarios whose run ended early (budget trip, cancellation, injected
  /// fault, evaluation error) in the per-scenario baselines. A skipped
  /// scenario contributes no violations; the first non-ok outcome in
  /// scenario order is recorded in Outcome, so the report is deterministic
  /// for any thread count.
  uint64_t ScenariosSkipped = 0;
  /// Scenarios (or scenario chunks' worth of scenarios) replayed from a
  /// resume journal instead of re-simulated. Counted inside
  /// ScenariosChecked, so aggregate counts match an uninterrupted run.
  uint64_t ScenariosReplayed = 0;
  /// Extra attempts spent by the retry policy across all scenarios.
  uint64_t RetriesPerformed = 0;
  RunOutcome Outcome;
  std::vector<FtViolation> Violations;
  /// Keeps evaluation contexts alive so Violation::Route pointers interned
  /// in them stay valid: per-worker arenas for the parallel naive baseline,
  /// and the internally-owned context for runFaultTolerance (empty when a
  /// caller-provided context already owns the values).
  std::vector<std::shared_ptr<NvContext>> RetainedContexts;
  bool holds() const { return Violations.empty(); }
};

/// Checks the base program's assert under every scenario, by indexing the
/// converged dict labels of the meta-program with each scenario key. The
/// failed node (if any) is exempt from its own assertion.
///
/// The assert is evaluated once per (node, distinct leaf) by walking each
/// label diagram's cubes up front — not once per (node, scenario) — and
/// the scenario indexing loop is sharded over \p Pool when given (the
/// shards only read the already-built MTBDD, so no locking is needed).
/// Output is identical for any pool size, including the violation order.
FtCheckResult checkFaultTolerance(NvContext &Ctx, const Program &BaseProgram,
                                  ProtocolEvaluator &BaseEval,
                                  const SimResult &MetaResult,
                                  const FtOptions &Opts,
                                  ThreadPool *Pool = nullptr);

/// The reusable assert-check engine underneath checkFaultTolerance: the
/// serial pre-pass (assert once per distinct MTBDD leaf, scenario-key
/// encoding, meta-label rooting) runs once at construction; checkChunk
/// then indexes one chunk of scenarios — read-only over the diagram, so
/// shardable over a pool — and returns the chunk's canonical UnitRecord
/// ("c<C>", status, one "v" field per violation). In-process chunked
/// checking journals these records; fleet workers send the *same* records
/// over the result pipe, which is what makes `--workers N` aggregates
/// bit-identical to `--workers 0`.
class FtChecker {
public:
  /// \p MetaResult must be converged with dict labels; both it and
  /// \p Ctx/\p BaseEval must outlive the checker.
  FtChecker(NvContext &Ctx, const Program &BaseProgram,
            ProtocolEvaluator &BaseEval, const SimResult &MetaResult,
            const FtOptions &Opts);
  ~FtChecker();

  const std::vector<FtScenario> &scenarios() const;
  size_t numChunks() const;
  /// The journal/fleet key of chunk \p C: "c<C>".
  static std::string chunkKey(size_t C);

  /// Checks scenarios [C*CheckChunkSize, ...) and returns the chunk's
  /// record. Live violations (Route interned in Ctx) are additionally
  /// appended to \p LiveOut when given, in scenario order.
  UnitRecord checkChunk(size_t C, ThreadPool *Pool = nullptr,
                        std::vector<FtViolation> *LiveOut = nullptr);

  /// Indexes a single scenario (thread-safe; read-only).
  void checkScenario(size_t I, std::vector<FtViolation> &Out) const;

private:
  struct ImplTy;
  std::unique_ptr<ImplTy> Impl;
};

/// Folds one record per chunk — from a fleet run, a resume journal, or a
/// mix — into \p Out with the replay path's semantics: violations in
/// scenario order (Route null, RouteText filled), a non-ok chunk (e.g. a
/// quarantined poison chunk) contributing its scenario count to
/// ScenariosSkipped and the first non-ok outcome in chunk order kept.
/// Returns false when some chunk's record is missing or malformed.
bool aggregateFtChunkRecords(
    const std::vector<FtScenario> &Scenarios, unsigned ChunkSize,
    const std::function<bool(const std::string &, UnitRecord &)> &Lookup,
    FtCheckResult &Out);

/// Convenience driver: transform, simulate (interpreted or compiled), and
/// check. Null base assert means only convergence is checked.
///
/// \p ReuseCtx (optional) runs the analysis in a caller-owned context
/// instead of a fresh one — e.g. one context per network reused across
/// failure budgets. The context is garbage-collected down to its pinned
/// baseline at the START of each run, so one run's result (violation
/// routes, cache stats) stays valid until the next call with the same
/// context. Cache hit/miss counts are reported as per-run deltas either
/// way.
struct FtRunResult {
  bool Converged = false;
  FtCheckResult Check;
  SimStats Stats;
  double TransformMs = 0, SimulateMs = 0, CheckMs = 0;
  /// MTBDD operation-cache statistics of the meta-simulation's manager.
  uint64_t CacheHits = 0, CacheMisses = 0;
  /// How the run ended: Ok, a budget/cancellation/fault trip (Converged
  /// false, phases completed so far are reported), or an evaluation error.
  RunOutcome Outcome;
};
FtRunResult runFaultTolerance(const Program &P, const FtOptions &Opts,
                              bool UseCompiledEvaluator,
                              DiagnosticEngine &Diags,
                              bool CheckAsserts = true,
                              NvContext *ReuseCtx = nullptr);

} // namespace nv

#endif // NV_ANALYSIS_FAULTTOLERANCE_H
