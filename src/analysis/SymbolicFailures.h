//===- SymbolicFailures.h - SMT-style bounded failures ----------*- C++ -*-===//
//
// Part of nv-cpp. The SMT route to fault tolerance (the "NV-SMT" series of
// Fig. 13a): one symbolic boolean per link, a require clause bounding how
// many may fail, and a transfer function that drops routes over failed
// links. The verifier then reasons over every assignment — i.e. every
// failure scenario — at once, MineSweeper-style.
//
//===----------------------------------------------------------------------===//

#ifndef NV_ANALYSIS_SYMBOLICFAILURES_H
#define NV_ANALYSIS_SYMBOLICFAILURES_H

#include "core/Ast.h"
#include "support/Diagnostics.h"

#include <optional>

namespace nv {

/// Wraps a type-checked program with symbolic link failures: declares
/// `symbolic __fail_i : bool` per link, requires that at most
/// \p MaxFailures are true, and guards the transfer function. The drop
/// route is \p DropValueSource (defaults to None).
std::optional<Program>
makeSymbolicFailureProgram(const Program &P, unsigned MaxFailures,
                           DiagnosticEngine &Diags,
                           const std::string &DropValueSource = "None");

} // namespace nv

#endif // NV_ANALYSIS_SYMBOLICFAILURES_H
