//===- FaultTolerance.cpp - Fig. 5 fault-tolerance meta-protocol ------------===//

#include "analysis/FaultTolerance.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "support/Timer.h"
#include "transform/Transforms.h"

#include <cassert>
#include <cstdlib>
#include <memory>
#include <unordered_set>

using namespace nv;

namespace {

/// NV source of the scenario key type.
std::string keyTypeSource(const FtOptions &Opts) {
  unsigned Components = Opts.LinkFailures + (Opts.NodeFailure ? 1 : 0);
  if (Components == 1 && !Opts.NodeFailure)
    return "edge";
  std::string S = "(";
  bool First = true;
  if (Opts.NodeFailure) {
    S += "node";
    First = false;
  }
  for (unsigned I = 0; I < Opts.LinkFailures; ++I) {
    if (!First)
      S += ", ";
    S += "edge";
    First = false;
  }
  return S + ")";
}

/// Destructures `key` into named components; returns the binder prelude
/// ("let (n, k0, k1) = key in ") and the component names.
std::string keyBinders(const FtOptions &Opts, std::string &NodeName,
                       std::vector<std::string> &LinkNames) {
  NodeName.clear();
  LinkNames.clear();
  for (unsigned I = 0; I < Opts.LinkFailures; ++I)
    LinkNames.push_back("__k" + std::to_string(I));
  if (!Opts.NodeFailure && Opts.LinkFailures == 1) {
    LinkNames[0] = "key";
    return "";
  }
  std::string Binder = "let (";
  bool First = true;
  if (Opts.NodeFailure) {
    NodeName = "__fn";
    Binder += NodeName;
    First = false;
  }
  for (const std::string &L : LinkNames) {
    if (!First)
      Binder += ", ";
    Binder += L;
    First = false;
  }
  return Binder + ") = key in ";
}

} // namespace

std::optional<Program> nv::makeFaultTolerantProgram(const Program &P,
                                                    const FtOptions &Opts,
                                                    DiagnosticEngine &Diags) {
  if (!P.AttrType) {
    Diags.error({}, "fault-tolerance transform requires a type-checked "
                    "program (missing attribute type)");
    return std::nullopt;
  }
  if (Opts.LinkFailures == 0 && !Opts.NodeFailure) {
    Diags.error({}, "fault-tolerance transform needs at least one failure");
    return std::nullopt;
  }

  Program Base = renameSemanticDecls(P);
  std::string Src = printProgram(Base);

  std::string K = keyTypeSource(Opts);
  std::string A = typeToString(P.AttrType);
  std::string Drop = Opts.DropValueSource;

  std::string NodeName;
  std::vector<std::string> LinkNames;
  std::string Binders = keyBinders(Opts, NodeName, LinkNames);

  // Does scenario `key` fail the (undirected) link of directed edge e?
  Src += "\nlet __ft_match (f : edge) (e : edge) =\n"
         "  let (fa, fb) = f in\n"
         "  let (ea, eb) = e in\n"
         "  (fa = ea && fb = eb) || (fa = eb && fb = ea)\n";

  // Predicate over keys: scenario affects edge e (failed link, or failed
  // node adjacent to e).
  Src += "\nlet __ft_affects (key : " + K + ") (e : edge) =\n  " + Binders;
  {
    std::string Cond;
    for (const std::string &L : LinkNames) {
      if (!Cond.empty())
        Cond += " || ";
      Cond += "__ft_match " + L + " e";
    }
    if (!NodeName.empty()) {
      if (!Cond.empty())
        Cond += " || ";
      Cond += "(let (eu, ev) = e in " + NodeName + " = eu || " + NodeName +
              " = ev)";
    }
    Src += Cond + "\n";
  }

  // init: one copy of the base route per scenario; with node failures the
  // failed node originates nothing.
  if (NodeName.empty()) {
    Src += "\nlet init (u : node) : dict[" + K + ", " + A +
           "] = createDict (__base_init u)\n";
  } else {
    Src += "\nlet init (u : node) : dict[" + K + ", " + A + "] =\n"
           "  mapIte (fun (key : " + K + ") -> " + Binders + NodeName +
           " = u)\n"
           "         (fun (v : " + A + ") -> " + Drop + ")\n"
           "         (fun (v : " + A + ") -> v)\n"
           "         (createDict (__base_init u))\n";
  }

  // trans: Fig. 5's transFail, generalized to multi-failure keys.
  Src += "\nlet trans (e : edge) (x : dict[" + K + ", " + A + "]) =\n"
         "  mapIte (fun (key : " + K + ") -> __ft_affects key e)\n"
         "         (fun (v : " + A + ") -> " + Drop + ")\n"
         "         (fun (v : " + A + ") -> __base_trans e v)\n"
         "         x\n";

  // merge: Fig. 5's mergeFail.
  Src += "\nlet merge (u : node) (x : dict[" + K + ", " + A +
         "]) (y : dict[" + K + ", " + A + "]) =\n"
         "  combine (__base_merge u) x y\n";

  auto Out = parseProgram(Src, Diags);
  if (!Out) {
    Diags.error({}, "internal: generated fault-tolerance program failed to "
                    "parse");
    return std::nullopt;
  }
  if (!typeCheck(*Out, Diags))
    return std::nullopt;
  return Out;
}

std::string FtViolation::routeStr() const {
  return Route ? Route->str() : RouteText;
}

void nv::addViolationField(UnitRecord &R, size_t ScenarioIdx,
                           const FtViolation &V) {
  std::string Text = V.routeStr();
  // Journal records are line-based; route renderings are single-line today,
  // and this keeps the record well-formed if one ever is not.
  for (char &C : Text)
    if (C == '\n')
      C = ' ';
  R.add("v", std::to_string(ScenarioIdx) + " " + std::to_string(V.Node) + " " +
                 Text);
}

bool nv::parseViolationFields(const UnitRecord &R,
                              const std::vector<FtScenario> &Scenarios,
                              std::vector<std::pair<size_t, FtViolation>> &Out) {
  for (const std::string &V : R.all("v")) {
    size_t Sp1 = V.find(' ');
    if (Sp1 == std::string::npos)
      return false;
    size_t Sp2 = V.find(' ', Sp1 + 1);
    if (Sp2 == std::string::npos)
      return false;
    char *End = nullptr;
    unsigned long long Idx = std::strtoull(V.c_str(), &End, 10);
    unsigned long long Node = std::strtoull(V.c_str() + Sp1 + 1, &End, 10);
    if (Idx >= Scenarios.size())
      return false;
    FtViolation Viol;
    Viol.Scenario = Scenarios[Idx];
    Viol.Node = uint32_t(Node);
    Viol.Route = nullptr;
    Viol.RouteText = V.substr(Sp2 + 1);
    Out.emplace_back(size_t(Idx), std::move(Viol));
  }
  return true;
}

std::string FtScenario::str() const {
  std::string S = "{";
  if (Node)
    S += "node " + std::to_string(*Node) + (Links.empty() ? "" : "; ");
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      S += "; ";
    S += "link " + std::to_string(Links[I].first) + "-" +
         std::to_string(Links[I].second);
  }
  return S + "}";
}

std::vector<FtScenario> nv::enumerateScenarios(const Program &P,
                                               const FtOptions &Opts) {
  auto Links = P.links();
  std::vector<FtScenario> Out;

  // Combinations of links with repetition (repetition = fewer failures).
  std::vector<std::vector<size_t>> LinkCombos;
  std::vector<size_t> Cur(Opts.LinkFailures, 0);
  std::function<void(unsigned, size_t)> Rec = [&](unsigned Pos, size_t From) {
    if (Pos == Opts.LinkFailures) {
      LinkCombos.push_back(Cur);
      return;
    }
    for (size_t I = From; I < Links.size(); ++I) {
      Cur[Pos] = I;
      Rec(Pos + 1, I);
    }
  };
  if (Opts.LinkFailures == 0)
    LinkCombos.push_back({});
  else
    Rec(0, 0);

  uint32_t N = P.numNodes();
  if (Opts.NodeFailure) {
    for (uint32_t U = 0; U < N; ++U)
      for (const auto &Combo : LinkCombos) {
        FtScenario S;
        S.Node = U;
        for (size_t I : Combo)
          S.Links.push_back(Links[I]);
        Out.push_back(std::move(S));
      }
  } else {
    for (const auto &Combo : LinkCombos) {
      FtScenario S;
      for (size_t I : Combo)
        S.Links.push_back(Links[I]);
      Out.push_back(std::move(S));
    }
  }
  return Out;
}

const Value *nv::scenarioKey(NvContext &Ctx, const FtScenario &S,
                             const FtOptions &Opts) {
  std::vector<const Value *> Parts;
  if (Opts.NodeFailure)
    Parts.push_back(Ctx.nodeV(S.Node.value_or(0)));
  for (const auto &[U, V] : S.Links)
    Parts.push_back(Ctx.edgeV(U, V));
  if (Parts.size() == 1)
    return Parts[0];
  return Ctx.tupleV(std::move(Parts));
}

//===----------------------------------------------------------------------===//
// FtChecker
//===----------------------------------------------------------------------===//

struct FtChecker::ImplTy {
  NvContext &Ctx;
  const SimResult &Meta;
  FtOptions Opts;
  uint32_t N;
  std::vector<FtScenario> Scenarios;
  /// Roots the meta labels' diagrams for the checker's lifetime: the
  /// assert pre-pass and key encoding intern fresh values, and if a
  /// collection fires the label roots must survive it.
  BddManager::RootSet MetaRoots;
  std::vector<std::unordered_set<const void *>> FailingLeaves;
  std::vector<std::vector<bool>> KeyBits;

  ImplTy(NvContext &Ctx, const Program &BaseProgram,
         ProtocolEvaluator &BaseEval, const SimResult &MetaResult,
         const FtOptions &Opts)
      : Ctx(Ctx), Meta(MetaResult), Opts(Opts), N(BaseProgram.numNodes()),
        Scenarios(enumerateScenarios(BaseProgram, Opts)), MetaRoots(Ctx.Mgr) {
    if (this->Opts.CheckChunkSize == 0)
      this->Opts.CheckChunkSize = 512;
    for (uint32_t U = 0; U < N; ++U)
      if (Meta.Labels[U]->K == Value::Kind::Map)
        MetaRoots.add(Meta.Labels[U]->MapRoot);

    // Serial pre-pass: evaluate the assert once per (node, distinct leaf)
    // by walking each label diagram's cubes — far fewer evaluations than
    // once per (node, scenario), since MTBDD sharing keeps the number of
    // distinct routes per node tiny (Fig. 4). This is also what makes the
    // sharded phase safe: the interpreter and the value arena are only
    // touched here.
    FailingLeaves.resize(N);
    for (uint32_t U = 0; U < N; ++U) {
      const Value *L = Meta.Labels[U];
      assert(L->K == Value::Kind::Map && "meta-labels must be dicts");
      std::unordered_set<const void *> Seen;
      Ctx.Mgr.forEachCube(L->MapRoot, L->KeyBits,
                          [&](const std::vector<int8_t> &, const void *Leaf) {
                            if (!Seen.insert(Leaf).second)
                              return;
                            if (!BaseEval.assertAt(
                                    U, static_cast<const Value *>(Leaf)))
                              FailingLeaves[U].insert(Leaf);
                          });
    }

    // Serial: scenario keys intern values, so encode them before fanning
    // out. Chunk checking afterwards only reads the MTBDD node array.
    KeyBits.resize(Scenarios.size());
    if (!Scenarios.empty()) {
      const TypePtr &KeyTy = Meta.Labels[0]->KeyType;
      for (size_t I = 0; I < Scenarios.size(); ++I)
        Ctx.encodeValue(scenarioKey(Ctx, Scenarios[I], Opts), KeyTy,
                        KeyBits[I]);
    }
  }
};

FtChecker::FtChecker(NvContext &Ctx, const Program &BaseProgram,
                     ProtocolEvaluator &BaseEval, const SimResult &MetaResult,
                     const FtOptions &Opts)
    : Impl(std::make_unique<ImplTy>(Ctx, BaseProgram, BaseEval, MetaResult,
                                    Opts)) {}

FtChecker::~FtChecker() = default;

const std::vector<FtScenario> &FtChecker::scenarios() const {
  return Impl->Scenarios;
}

size_t FtChecker::numChunks() const {
  return (Impl->Scenarios.size() + Impl->Opts.CheckChunkSize - 1) /
         Impl->Opts.CheckChunkSize;
}

std::string FtChecker::chunkKey(size_t C) {
  std::string K = "c";
  K += std::to_string(C);
  return K;
}

void FtChecker::checkScenario(size_t I, std::vector<FtViolation> &Out) const {
  const FtScenario &S = Impl->Scenarios[I];
  for (uint32_t U = 0; U < Impl->N; ++U) {
    if (S.Node && *S.Node == U)
      continue; // a failed node asserts nothing
    const Value *Route = static_cast<const Value *>(
        Impl->Ctx.Mgr.get(Impl->Meta.Labels[U]->MapRoot, Impl->KeyBits[I]));
    if (Impl->FailingLeaves[U].count(Route))
      Out.push_back({S, U, Route, {}});
  }
}

UnitRecord FtChecker::checkChunk(size_t C, ThreadPool *Pool,
                                 std::vector<FtViolation> *LiveOut) {
  size_t Begin = C * Impl->Opts.CheckChunkSize;
  size_t End = std::min(Begin + Impl->Opts.CheckChunkSize,
                        Impl->Scenarios.size());
  // Per-scenario slots, concatenated in scenario order, so the record is
  // identical for any pool size and any shard interleaving.
  std::vector<std::vector<FtViolation>> PerScenario(End - Begin);
  if (Pool && Pool->numThreads() > 1)
    Pool->parallelFor(End - Begin, [&](size_t I) {
      checkScenario(Begin + I, PerScenario[I]);
    });
  else
    for (size_t I = Begin; I < End; ++I)
      checkScenario(I, PerScenario[I - Begin]);

  UnitRecord Rec;
  Rec.Key = chunkKey(C);
  Rec.add("status", "ok");
  for (size_t I = Begin; I < End; ++I)
    for (const FtViolation &V : PerScenario[I - Begin]) {
      addViolationField(Rec, I, V);
      if (LiveOut)
        LiveOut->push_back(V);
    }
  return Rec;
}

bool nv::aggregateFtChunkRecords(
    const std::vector<FtScenario> &Scenarios, unsigned ChunkSize,
    const std::function<bool(const std::string &, UnitRecord &)> &Lookup,
    FtCheckResult &Out) {
  if (ChunkSize == 0)
    ChunkSize = 512;
  size_t NumChunks = (Scenarios.size() + ChunkSize - 1) / ChunkSize;
  for (size_t C = 0; C < NumChunks; ++C) {
    size_t Begin = C * ChunkSize;
    size_t End = std::min(Begin + size_t(ChunkSize), Scenarios.size());
    UnitRecord Rec;
    if (!Lookup(FtChecker::chunkKey(C), Rec))
      return false;
    RunOutcome O;
    unsigned Attempts = 1;
    if (!parseOutcome(Rec, O, Attempts))
      return false;
    Out.ScenariosChecked += End - Begin;
    if (!O.ok()) {
      // A quarantined (or otherwise skipped) chunk contributes no
      // violations — exactly like a skipped scenario in the naive paths.
      Out.ScenariosSkipped += End - Begin;
      if (Out.Outcome.ok())
        Out.Outcome = O;
      continue;
    }
    std::vector<std::pair<size_t, FtViolation>> Vs;
    if (!parseViolationFields(Rec, Scenarios, Vs))
      return false;
    for (auto &IV : Vs)
      Out.Violations.push_back(std::move(IV.second));
  }
  return true;
}

FtCheckResult nv::checkFaultTolerance(NvContext &Ctx,
                                      const Program &BaseProgram,
                                      ProtocolEvaluator &BaseEval,
                                      const SimResult &MetaResult,
                                      const FtOptions &Opts,
                                      ThreadPool *Pool) {
  FtCheckResult R;
  uint32_t N = BaseProgram.numNodes();
  {
    auto Scenarios = enumerateScenarios(BaseProgram, Opts);
    R.ScenariosChecked = Scenarios.size();
    if (Scenarios.empty() || N == 0)
      return R;
  }

  FtChecker Checker(Ctx, BaseProgram, BaseEval, MetaResult, Opts);
  const auto &Scenarios = Checker.scenarios();

  if (Opts.Resume) {
    // Checkpointed mode: scenarios are journaled in fixed chunks (one
    // entry per chunk keeps journal traffic sane at fig13 scales). Chunks
    // are processed in order; a replayed chunk's violations come from the
    // journal, a fresh chunk is indexed (sharded over the pool) and then
    // durably recorded. Cancellation drains between chunks — the partial
    // chunk is simply not recorded and re-runs on resume.
    size_t ChunkSize = Opts.CheckChunkSize ? Opts.CheckChunkSize : 512;
    R.ScenariosChecked = 0;
    CancelToken *Cancel = Opts.Budget.Cancel;
    for (size_t C = 0; C < Checker.numChunks(); ++C) {
      size_t Begin = C * ChunkSize;
      size_t End = std::min(Begin + ChunkSize, Scenarios.size());
      UnitRecord Rec;
      if (Opts.Resume->replay(FtChecker::chunkKey(C), Rec)) {
        std::vector<std::pair<size_t, FtViolation>> Replayed;
        if (parseViolationFields(Rec, Scenarios, Replayed))
          for (auto &[I, V] : Replayed)
            R.Violations.push_back(std::move(V));
        R.ScenariosChecked += End - Begin;
        R.ScenariosReplayed += End - Begin;
        continue;
      }
      if (Cancel && Cancel->isCanceled()) {
        R.Outcome = {RunStatus::Canceled, "fault-tolerance check canceled",
                     ""};
        break;
      }
      Rec = Checker.checkChunk(C, Pool, &R.Violations);
      R.ScenariosChecked += End - Begin;
      Opts.Resume->recordDone(Rec);
    }
  } else {
    // Unchunked: index every scenario; embarrassingly parallel and
    // read-only, with per-scenario slots keeping the violation order
    // identical for any pool size.
    std::vector<std::vector<FtViolation>> PerScenario(Scenarios.size());
    if (Pool && Pool->numThreads() > 1)
      Pool->parallelFor(Scenarios.size(), [&](size_t I) {
        Checker.checkScenario(I, PerScenario[I]);
      });
    else
      for (size_t I = 0; I < Scenarios.size(); ++I)
        Checker.checkScenario(I, PerScenario[I]);
    for (auto &Part : PerScenario)
      R.Violations.insert(R.Violations.end(), Part.begin(), Part.end());
  }
  return R;
}

FtRunResult nv::runFaultTolerance(const Program &P, const FtOptions &Opts,
                                  bool UseCompiledEvaluator,
                                  DiagnosticEngine &Diags, bool CheckAsserts,
                                  NvContext *ReuseCtx) {
  FtRunResult Out;
  Stopwatch W;
  // One governor spans the whole analysis: the step budget counts the
  // meta-simulation's pops, and a deadline/cancellation also covers the
  // transform and the assert-check phases. The simulator is handed an
  // unlimited budget of its own so the run is governed exactly once.
  Governor::Scope Guard(Opts.Budget);
  try {
  auto Meta = makeFaultTolerantProgram(P, Opts, Diags);
  Out.TransformMs = W.elapsedMs();
  if (!Meta) {
    Out.Outcome = {RunStatus::EvalError, "fault-tolerance transform failed",
                   ""};
    return Out;
  }

  // Reuse mode collects the PREVIOUS run's garbage down to the caller's
  // pinned baseline now, at the start — so the previous FtRunResult's
  // route pointers stay valid until the next call on the same context.
  std::shared_ptr<NvContext> OwnCtx;
  if (ReuseCtx)
    ReuseCtx->resetBetweenRuns();
  else
    OwnCtx = std::make_shared<NvContext>(P.numNodes());
  NvContext &Ctx = ReuseCtx ? *ReuseCtx : *OwnCtx;
  // Deltas, not totals: a reused manager's counters span earlier runs.
  uint64_t Hits0 = Ctx.Mgr.cacheHits(), Misses0 = Ctx.Mgr.cacheMisses();

  {
    std::unique_ptr<ProtocolEvaluator> Eval;
    W.restart();
    if (UseCompiledEvaluator)
      Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, *Meta);
    else
      Eval = std::make_unique<InterpProgramEvaluator>(Ctx, *Meta);
    SimOptions SO;
    SO.Budget = RunBudget{}; // governed by this run's outer scope instead
    SimResult R = simulate(*Meta, *Eval, SO);
    Out.SimulateMs = W.elapsedMs();
    Out.Converged = R.Converged;
    Out.Outcome = R.Outcome;
    Out.Stats = R.Stats;
    Out.CacheHits = Ctx.Mgr.cacheHits() - Hits0;
    Out.CacheMisses = Ctx.Mgr.cacheMisses() - Misses0;
    if (R.Converged && CheckAsserts) {
      W.restart();
      InterpProgramEvaluator BaseEval(Ctx, P);
      std::optional<ThreadPool> Pool;
      if (Opts.Threads != 1)
        Pool.emplace(Opts.Threads);
      Out.Check = checkFaultTolerance(Ctx, P, BaseEval, R, Opts,
                                      Pool ? &*Pool : nullptr);
      Out.CheckMs = W.elapsedMs();
    }
  }
  // Keep an owned context alive so Violation::Route pointers in the
  // returned result do not dangle.
  if (OwnCtx)
    Out.Check.RetainedContexts.push_back(std::move(OwnCtx));
  return Out;
  } catch (const EngineError &E) {
    // A trip outside the simulator's own catch (transform, evaluator
    // construction, or the assert-check phase). The phases that completed
    // keep their timings/stats; Converged reflects how far we got.
    Out.Outcome = E.outcome();
    Diags.error({}, "fault-tolerance analysis stopped: " + Out.Outcome.str());
    return Out;
  }
}
