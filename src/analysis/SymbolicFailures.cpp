//===- SymbolicFailures.cpp - SMT-style bounded failures ---------------------===//

#include "analysis/SymbolicFailures.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "transform/Transforms.h"

using namespace nv;

std::optional<Program>
nv::makeSymbolicFailureProgram(const Program &P, unsigned MaxFailures,
                               DiagnosticEngine &Diags,
                               const std::string &DropValueSource) {
  if (!P.AttrType) {
    Diags.error({}, "symbolic-failure transform requires a type-checked "
                    "program");
    return std::nullopt;
  }
  Program Base = renameSemanticDecls(P);
  std::string Src = printProgram(Base);
  std::string A = typeToString(P.AttrType);
  auto Links = P.links();

  for (size_t I = 0; I < Links.size(); ++I)
    Src += "symbolic __fail_" + std::to_string(I) + " : bool\n";

  // At most MaxFailures links fail.
  std::string Sum;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Sum += " + ";
    Sum += "(if __fail_" + std::to_string(I) + " then 1 else 0)";
  }
  Src += "require (" + Sum + ") <= " + std::to_string(MaxFailures) + "\n";

  // Is the link under directed edge e failed? Specializes to a single
  // boolean once trans is applied to a concrete edge (partial evaluation
  // through the encoder).
  Src += "let __ft_linkdown (e : edge) =\n  let (eu, ev) = e in\n  false";
  for (size_t I = 0; I < Links.size(); ++I) {
    std::string U = std::to_string(Links[I].first) + "n";
    std::string V = std::to_string(Links[I].second) + "n";
    Src += "\n  || (((eu = " + U + " && ev = " + V + ") || (eu = " + V +
           " && ev = " + U + ")) && __fail_" + std::to_string(I) + ")";
  }
  Src += "\n";

  Src += "let trans (e : edge) (x : " + A + ") =\n"
         "  if __ft_linkdown e then " + DropValueSource +
         " else __base_trans e x\n";
  Src += "let init (u : node) = __base_init u\n";
  Src += "let merge (u : node) (x : " + A + ") (y : " + A +
         ") = __base_merge u x y\n";
  if (P.assertDecl())
    Src += "let assert (u : node) (x : " + A + ") = __base_assert u x\n";

  auto Out = parseProgram(Src, Diags);
  if (!Out)
    return std::nullopt;
  if (!typeCheck(*Out, Diags))
    return std::nullopt;
  return Out;
}
