//===- RouteMapDag.cpp - Route-map DAG IR -------------------------------------===//

#include "frontend/RouteMapDag.h"

#include "support/Fatal.h"

#include <functional>
#include <map>
#include <set>

using namespace nv;

bool RouteMapDag::prefixConditionsHoisted() const {
  // DFS: once below a community condition, no prefix condition may appear.
  std::function<bool(int, bool)> Rec = [&](int I, bool BelowComm) -> bool {
    if (I < 0)
      return true;
    const Node &N = node(I);
    switch (N.K) {
    case Node::Kind::Mutate:
    case Node::Kind::Drop:
      return true;
    case Node::Kind::CondPrefix:
      if (BelowComm)
        return false;
      return Rec(N.True, BelowComm) && Rec(N.False, BelowComm);
    case Node::Kind::CondCommunity:
      return Rec(N.True, true) && Rec(N.False, true);
    }
    return true;
  };
  return Rec(Root, false);
}

std::vector<std::string> RouteMapDag::prefixListsUsed() const {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  std::function<void(int)> Rec = [&](int I) {
    if (I < 0)
      return;
    const Node &N = node(I);
    if (N.K == Node::Kind::CondPrefix && Seen.insert(N.ListName).second)
      Out.push_back(N.ListName);
    if (N.K == Node::Kind::CondPrefix || N.K == Node::Kind::CondCommunity) {
      Rec(N.True);
      Rec(N.False);
    }
  };
  Rec(Root);
  return Out;
}

std::string RouteMapDag::str() const {
  std::string S;
  std::function<void(int, int)> Rec = [&](int I, int Depth) {
    std::string Pad(static_cast<size_t>(Depth) * 2, ' ');
    const Node &N = node(I);
    switch (N.K) {
    case Node::Kind::Drop:
      S += Pad + "drop\n";
      return;
    case Node::Kind::Mutate: {
      S += Pad + "mutate";
      if (N.SetLocalPref)
        S += " lp<-" + std::to_string(*N.SetLocalPref);
      if (N.SetMetric)
        S += " med<-" + std::to_string(*N.SetMetric);
      if (N.AddCommunity)
        S += " comm+=" + std::to_string(*N.AddCommunity);
      S += "\n";
      return;
    }
    case Node::Kind::CondCommunity:
      S += Pad + "match community " + N.ListName + "\n";
      break;
    case Node::Kind::CondPrefix:
      S += Pad + "match prefix " + N.ListName + "\n";
      break;
    }
    Rec(N.True, Depth + 1);
    Rec(N.False, Depth + 1);
  };
  if (Root >= 0)
    Rec(Root, 0);
  return S;
}

RouteMapDag nv::buildRouteMapDag(const RouteMap &RM) {
  RouteMapDag D;
  auto Add = [&](RouteMapDag::Node N) {
    D.Nodes.push_back(std::move(N));
    return static_cast<int>(D.Nodes.size() - 1);
  };

  // Running off the end of a route-map drops the route (Fig. 10b's ⊥).
  RouteMapDag::Node DropN;
  DropN.K = RouteMapDag::Node::Kind::Drop;
  int Next = Add(DropN);

  for (auto It = RM.Clauses.rbegin(); It != RM.Clauses.rend(); ++It) {
    const RouteMapClause &C = *It;
    int Leaf;
    if (C.Permit) {
      RouteMapDag::Node M;
      M.K = RouteMapDag::Node::Kind::Mutate;
      M.SetLocalPref = C.SetLocalPref;
      M.SetMetric = C.SetMetric;
      M.AddCommunity = C.SetCommunity;
      Leaf = Add(M);
    } else {
      Leaf = Add(DropN);
    }
    // Conditions nest: community first, then prefix (as written in
    // Fig. 10a); a failed condition falls through to the next clause.
    int Chain = Leaf;
    if (C.MatchPrefixList) {
      RouteMapDag::Node P;
      P.K = RouteMapDag::Node::Kind::CondPrefix;
      P.ListName = *C.MatchPrefixList;
      P.True = Chain;
      P.False = Next;
      Chain = Add(P);
    }
    if (C.MatchCommunityList) {
      RouteMapDag::Node Cm;
      Cm.K = RouteMapDag::Node::Kind::CondCommunity;
      Cm.ListName = *C.MatchCommunityList;
      Cm.True = Chain;
      Cm.False = Next;
      Chain = Add(Cm);
    }
    Next = Chain;
  }
  D.Root = Next;
  return D;
}

namespace {

/// Copies the sub-DAG at \p I into \p Out with every prefix condition
/// resolved per \p Fixed.
int specialize(const RouteMapDag &In, int I, RouteMapDag &Out,
               const std::map<std::string, bool> &Fixed) {
  const RouteMapDag::Node &N = In.node(I);
  switch (N.K) {
  case RouteMapDag::Node::Kind::Drop:
  case RouteMapDag::Node::Kind::Mutate: {
    Out.Nodes.push_back(N);
    return static_cast<int>(Out.Nodes.size() - 1);
  }
  case RouteMapDag::Node::Kind::CondPrefix: {
    auto It = Fixed.find(N.ListName);
    if (It == Fixed.end())
      fatalError("hoisting missed prefix list " + N.ListName);
    return specialize(In, It->second ? N.True : N.False, Out, Fixed);
  }
  case RouteMapDag::Node::Kind::CondCommunity: {
    int T = specialize(In, N.True, Out, Fixed);
    int F = specialize(In, N.False, Out, Fixed);
    RouteMapDag::Node C = N;
    C.True = T;
    C.False = F;
    Out.Nodes.push_back(C);
    return static_cast<int>(Out.Nodes.size() - 1);
  }
  }
  nv_unreachable("covered switch");
}

} // namespace

RouteMapDag nv::hoistPrefixConditions(const RouteMapDag &In) {
  std::vector<std::string> Lists = In.prefixListsUsed();
  RouteMapDag Out;

  std::map<std::string, bool> Fixed;
  std::function<int(size_t)> Rec = [&](size_t Depth) -> int {
    if (Depth == Lists.size())
      return specialize(In, In.Root, Out, Fixed);
    Fixed[Lists[Depth]] = true;
    int T = Rec(Depth + 1);
    Fixed[Lists[Depth]] = false;
    int F = Rec(Depth + 1);
    Fixed.erase(Lists[Depth]);
    RouteMapDag::Node P;
    P.K = RouteMapDag::Node::Kind::CondPrefix;
    P.ListName = Lists[Depth];
    P.True = T;
    P.False = F;
    Out.Nodes.push_back(P);
    return static_cast<int>(Out.Nodes.size() - 1);
  };
  Out.Root = Rec(0);
  return Out;
}
