//===- Config.cpp - Cisco-style configuration model ---------------------------===//

#include "frontend/Config.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace nv;

std::string Prefix::str() const {
  return std::to_string((Addr >> 24) & 0xFF) + "." +
         std::to_string((Addr >> 16) & 0xFF) + "." +
         std::to_string((Addr >> 8) & 0xFF) + "." +
         std::to_string(Addr & 0xFF) + "/" + std::to_string(Len);
}

std::vector<Prefix> RouterConfig::originated() const {
  std::vector<Prefix> Out = StaticRoutes;
  Out.insert(Out.end(), Networks.begin(), Networks.end());
  Out.insert(Out.end(), Connected.begin(), Connected.end());
  Out.insert(Out.end(), OspfNetworks.begin(), OspfNetworks.end());
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

int NetworkConfig::routerIndex(const std::string &Name) const {
  for (size_t I = 0; I < Routers.size(); ++I)
    if (Routers[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

std::vector<std::pair<uint32_t, uint32_t>>
NetworkConfig::links(DiagnosticEngine &Diags) const {
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  for (size_t I = 0; I < Routers.size(); ++I) {
    for (const std::string &N : Routers[I].InterfaceNeighbors) {
      int J = routerIndex(N);
      if (J < 0) {
        Diags.error({}, "router " + Routers[I].Name +
                            " names unknown neighbor " + N);
        continue;
      }
      uint32_t A = static_cast<uint32_t>(I), B = static_cast<uint32_t>(J);
      if (A > B)
        std::swap(A, B);
      if (Seen.insert({A, B}).second)
        Out.emplace_back(A, B);
    }
  }
  return Out;
}

std::vector<Prefix> NetworkConfig::allPrefixes() const {
  std::vector<Prefix> Out;
  for (const RouterConfig &R : Routers)
    for (const Prefix &P : R.originated())
      Out.push_back(P);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

namespace {

std::vector<std::string> tokenize(const std::string &Line) {
  std::istringstream In(Line);
  std::vector<std::string> Toks;
  std::string T;
  while (In >> T)
    Toks.push_back(T);
  return Toks;
}

std::optional<Prefix> parsePrefix(const std::string &S) {
  unsigned A, B, C, D, L;
  char Dot1, Dot2, Dot3, Slash;
  std::istringstream In(S);
  if (!(In >> A >> Dot1 >> B >> Dot2 >> C >> Dot3 >> D >> Slash >> L))
    return std::nullopt;
  if (Dot1 != '.' || Dot2 != '.' || Dot3 != '.' || Slash != '/')
    return std::nullopt;
  if (A > 255 || B > 255 || C > 255 || D > 255 || L > 32)
    return std::nullopt;
  Prefix P;
  P.Addr = (A << 24) | (B << 16) | (C << 8) | D;
  P.Len = static_cast<uint8_t>(L);
  return P;
}

} // namespace

std::optional<NetworkConfig> nv::parseConfigs(const std::string &Text,
                                              DiagnosticEngine &Diags) {
  NetworkConfig Net;
  RouterConfig *Cur = nullptr;
  RouteMap *CurMap = nullptr;
  RouteMapClause *CurClause = nullptr;
  enum class BlockMode { Top, Bgp, Ospf };
  BlockMode Mode = BlockMode::Top;
  int LineNo = 0;

  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    ++LineNo;
    SourceLoc Loc{LineNo, 1};
    auto T = tokenize(Line);
    if (T.empty() || T[0][0] == '!' || T[0][0] == '#')
      continue;

    auto NeedRouter = [&]() {
      if (!Cur)
        Diags.error(Loc, "statement outside a router block");
      return Cur != nullptr;
    };

    if (T[0] == "router" && T.size() == 2) {
      Net.Routers.push_back({});
      Cur = &Net.Routers.back();
      Cur->Name = T[1];
      CurMap = nullptr;
      CurClause = nullptr;
      Mode = BlockMode::Top;
      continue;
    }
    if (T[0] == "router" && T.size() == 3 && T[1] == "bgp") {
      if (!NeedRouter())
        continue;
      Cur->BgpEnabled = true; // the ASN itself is not modeled (eBGP only)
      Mode = BlockMode::Bgp;
      continue;
    }
    if (T[0] == "router" && T.size() == 3 && T[1] == "ospf") {
      if (!NeedRouter())
        continue;
      Cur->OspfEnabled = true;
      Mode = BlockMode::Ospf;
      continue;
    }
    if (T[0] == "interface" && T.size() >= 3 && T[1] == "neighbor") {
      if (NeedRouter()) {
        Cur->InterfaceNeighbors.push_back(T[2]);
        if (T.size() == 5 && T[3] == "cost")
          Cur->OspfCosts[T[2]] =
              static_cast<unsigned>(std::stoul(T[4]));
        else if (T.size() != 3)
          Diags.error(Loc, "malformed interface statement");
      }
      continue;
    }
    if (T[0] == "connected" && T.size() == 2) {
      if (!NeedRouter())
        continue;
      if (auto P = parsePrefix(T[1]))
        Cur->Connected.push_back(*P);
      else
        Diags.error(Loc, "malformed prefix '" + T[1] + "'");
      continue;
    }
    if (T[0] == "redistribute" && T.size() >= 2) {
      if (!NeedRouter())
        continue;
      if (Mode == BlockMode::Bgp) {
        if (T[1] == "static")
          Cur->BgpRedistStatic = true;
        else if (T[1] == "connected")
          Cur->BgpRedistConnected = true;
        else if (T[1] == "ospf")
          Cur->BgpRedistOspf = true;
        else
          Diags.error(Loc, "cannot redistribute '" + T[1] + "' into bgp");
      } else if (Mode == BlockMode::Ospf) {
        if (T[1] == "static")
          Cur->OspfRedistStatic = true;
        else if (T[1] == "connected")
          Cur->OspfRedistConnected = true;
        else
          Diags.error(Loc, "cannot redistribute '" + T[1] + "' into ospf");
        if (T.size() >= 4 && T[2] == "metric")
          Cur->OspfRedistMetric = static_cast<unsigned>(std::stoul(T[3]));
      } else {
        Diags.error(Loc, "redistribute outside a protocol block");
      }
      continue;
    }
    if (T[0] == "distance" && T.size() == 2) {
      if (!NeedRouter())
        continue;
      if (Mode == BlockMode::Ospf)
        Cur->OspfDistance = static_cast<unsigned>(std::stoul(T[1]));
      else
        Diags.error(Loc, "distance outside an ospf block");
      continue;
    }
    if (T[0] == "ip" && T.size() >= 3 && T[1] == "route") {
      if (!NeedRouter())
        continue;
      if (auto P = parsePrefix(T[2]))
        Cur->StaticRoutes.push_back(*P);
      else
        Diags.error(Loc, "malformed prefix '" + T[2] + "'");
      continue;
    }
    if (T[0] == "network" && T.size() >= 2) {
      if (!NeedRouter())
        continue;
      if (auto P = parsePrefix(T[1])) {
        if (Mode == BlockMode::Ospf)
          Cur->OspfNetworks.push_back(*P); // `area <n>` suffix accepted
        else
          Cur->Networks.push_back(*P);
      } else {
        Diags.error(Loc, "malformed prefix '" + T[1] + "'");
      }
      continue;
    }
    if (T[0] == "neighbor" && T.size() == 5 && T[2] == "route-map") {
      if (!NeedRouter())
        continue;
      BgpNeighbor *N = nullptr;
      for (BgpNeighbor &Existing : Cur->BgpNeighbors)
        if (Existing.Router == T[1])
          N = &Existing;
      if (!N) {
        Cur->BgpNeighbors.push_back({T[1], {}, {}});
        N = &Cur->BgpNeighbors.back();
      }
      if (T[4] == "in")
        N->InMap = T[3];
      else if (T[4] == "out")
        N->OutMap = T[3];
      else
        Diags.error(Loc, "route-map direction must be 'in' or 'out'");
      continue;
    }
    if (T[0] == "ip" && T.size() >= 5 && T[1] == "community-list" &&
        T[3] == "permit") {
      if (!NeedRouter())
        continue;
      std::vector<uint32_t> Comms;
      for (size_t I = 4; I < T.size(); ++I)
        Comms.push_back(static_cast<uint32_t>(std::stoul(T[I])));
      Cur->CommunityLists[T[2]] = Comms;
      continue;
    }
    if (T[0] == "ip" && T.size() == 5 && T[1] == "prefix-list" &&
        T[3] == "permit") {
      if (!NeedRouter())
        continue;
      if (auto P = parsePrefix(T[4]))
        Cur->PrefixLists[T[2]].push_back(*P);
      else
        Diags.error(Loc, "malformed prefix '" + T[4] + "'");
      continue;
    }
    if (T[0] == "route-map" && T.size() == 4) {
      if (!NeedRouter())
        continue;
      CurMap = &Cur->RouteMaps[T[1]];
      CurMap->Name = T[1];
      CurMap->Clauses.push_back({});
      CurClause = &CurMap->Clauses.back();
      CurClause->Permit = T[2] == "permit";
      CurClause->Seq = std::stoi(T[3]);
      continue;
    }
    if (T[0] == "match" && CurClause) {
      if (T.size() == 3 && T[1] == "community") {
        CurClause->MatchCommunityList = T[2];
        continue;
      }
      if (T.size() == 5 && T[1] == "ip" && T[2] == "address" &&
          T[3] == "prefix-list") {
        CurClause->MatchPrefixList = T[4];
        continue;
      }
      Diags.error(Loc, "unsupported match statement");
      continue;
    }
    if (T[0] == "set" && CurClause) {
      if (T.size() == 3 && T[1] == "local-preference") {
        CurClause->SetLocalPref = std::stoul(T[2]);
        continue;
      }
      if (T.size() == 3 && T[1] == "metric") {
        CurClause->SetMetric = std::stoul(T[2]);
        continue;
      }
      if (T.size() >= 3 && T[1] == "community") {
        CurClause->SetCommunity = std::stoul(T[2]);
        continue;
      }
      Diags.error(Loc, "unsupported set statement");
      continue;
    }
    Diags.error(Loc, "unrecognized statement: " + Line);
  }

  if (Diags.hasErrors())
    return std::nullopt;
  return Net;
}
