//===- Config.h - Cisco-style configuration model ---------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vendor-configuration model and parser for the Cisco IOS fragment of
/// Fig. 1 — the stand-in for the Batfish front end (see DESIGN.md). One
/// text blob holds all routers; the grammar (one statement per line,
/// indentation-insensitive):
///
///   router <name>
///     interface neighbor <router> [cost <n>]
///     connected <a>.<b>.<c>.<d>/<len>
///     ip route <a>.<b>.<c>.<d>/<len>
///     router bgp <asn>
///       network <a>.<b>.<c>.<d>/<len>
///       neighbor <router> route-map <rm> (in|out)
///       redistribute (static|connected|ospf)
///     router ospf <pid>
///       network <a>.<b>.<c>.<d>/<len>
///       redistribute (static|connected) [metric <n>]
///       distance <n>
///     ip community-list <name> permit <n>...
///     ip prefix-list <name> permit <a>.<b>.<c>.<d>/<len>
///     route-map <name> (permit|deny) <seq>
///       match community <commlist>
///       match ip address prefix-list <pfxlist>
///       set local-preference <n>
///       set metric <n>
///       set community <n>
///
//===----------------------------------------------------------------------===//

#ifndef NV_FRONTEND_CONFIG_H
#define NV_FRONTEND_CONFIG_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nv {

/// An IPv4 prefix, modeled as in Fig. 9: (address, length).
struct Prefix {
  uint32_t Addr = 0;
  uint8_t Len = 0;

  bool operator==(const Prefix &O) const {
    return Addr == O.Addr && Len == O.Len;
  }
  bool operator<(const Prefix &O) const {
    return Addr != O.Addr ? Addr < O.Addr : Len < O.Len;
  }
  std::string str() const;
};

/// One permit/deny clause of a route-map (Sec. 4.2): conditional
/// statements (matches) guarding mutation statements (sets).
struct RouteMapClause {
  bool Permit = true;
  int Seq = 0;
  std::optional<std::string> MatchCommunityList;
  std::optional<std::string> MatchPrefixList;
  std::optional<uint32_t> SetLocalPref;
  std::optional<uint32_t> SetMetric;
  std::optional<uint32_t> SetCommunity;
};

struct RouteMap {
  std::string Name;
  std::vector<RouteMapClause> Clauses; ///< In sequence order.
};

struct BgpNeighbor {
  std::string Router;
  std::optional<std::string> InMap;
  std::optional<std::string> OutMap;
};

struct RouterConfig {
  std::string Name;
  std::vector<std::string> InterfaceNeighbors;
  std::vector<Prefix> StaticRoutes; ///< `ip route` originations.
  std::vector<Prefix> Networks;     ///< `network` statements under bgp.
  std::vector<BgpNeighbor> BgpNeighbors;

  // Multi-protocol state (Sec. 4.1 / Fig. 9). When any router enables OSPF
  // or redistribution, the translation emits the full RIB model.
  bool BgpEnabled = false;
  bool OspfEnabled = false;
  std::vector<Prefix> Connected;    ///< `connected <prefix>` interfaces.
  std::vector<Prefix> OspfNetworks; ///< `network` statements under ospf.
  unsigned OspfDistance = 110;      ///< `distance <n>` under ospf (Fig. 1).
  unsigned OspfRedistMetric = 20;   ///< `redistribute static metric <n>`.
  bool BgpRedistStatic = false;
  bool BgpRedistConnected = false;
  bool BgpRedistOspf = false;
  bool OspfRedistStatic = false;
  bool OspfRedistConnected = false;
  std::map<std::string, unsigned> OspfCosts; ///< Per-neighbor link cost.
  std::map<std::string, std::vector<uint32_t>> CommunityLists;
  std::map<std::string, std::vector<Prefix>> PrefixLists;
  std::map<std::string, RouteMap> RouteMaps;

  /// All prefixes this router originates (static + network).
  std::vector<Prefix> originated() const;
};

struct NetworkConfig {
  std::vector<RouterConfig> Routers;

  int routerIndex(const std::string &Name) const;
  /// Undirected links derived from (symmetric) interface statements.
  std::vector<std::pair<uint32_t, uint32_t>> links(DiagnosticEngine &Diags) const;
  /// All prefixes originated anywhere, sorted and deduplicated.
  std::vector<Prefix> allPrefixes() const;
};

/// Parses a multi-router configuration blob. Diagnostics on malformed
/// statements; returns std::nullopt when errors were found.
std::optional<NetworkConfig> parseConfigs(const std::string &Text,
                                          DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_FRONTEND_CONFIG_H
