//===- RouteMapDag.h - Route-map DAG IR -------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DAG-based intermediate policy representation of Sec. 4.2 / Fig. 10:
/// non-leaf nodes are conditional statements (community or prefix tests),
/// leaves are mutation lists or the implicit drop. Prefix conditions are
/// hoisted above community conditions (Fig. 10b -> 10c) so the NV
/// translation can use them as mapIte key predicates while community
/// conditions become if-chains over map values (Fig. 10d).
///
//===----------------------------------------------------------------------===//

#ifndef NV_FRONTEND_ROUTEMAPDAG_H
#define NV_FRONTEND_ROUTEMAPDAG_H

#include "frontend/Config.h"

#include <optional>
#include <string>
#include <vector>

namespace nv {

struct RouteMapDag {
  struct Node {
    enum class Kind {
      CondCommunity, ///< Tests a community list against route tags.
      CondPrefix,    ///< Tests a prefix list against the destination key.
      Mutate,        ///< Leaf: apply the sets and accept the route.
      Drop,          ///< Leaf: implicit or explicit deny.
    };
    Kind K = Kind::Drop;
    std::string ListName; ///< Conditions: list tested.
    int True = -1;        ///< Conditions: child when the test holds.
    int False = -1;
    std::optional<uint32_t> SetLocalPref; ///< Mutate payload.
    std::optional<uint32_t> SetMetric;
    std::optional<uint32_t> AddCommunity;
  };

  std::vector<Node> Nodes;
  int Root = -1;

  const Node &node(int I) const { return Nodes[static_cast<size_t>(I)]; }

  /// True when no CondPrefix node is reachable below a CondCommunity node
  /// (the Fig. 10c invariant the translation relies on).
  bool prefixConditionsHoisted() const;

  /// Prefix-list names in first-use order.
  std::vector<std::string> prefixListsUsed() const;

  std::string str() const; ///< Debug rendering.
};

/// Fig. 10a -> 10b: clauses become condition chains; a failed condition
/// falls through to the next clause; running off the end drops the route.
RouteMapDag buildRouteMapDag(const RouteMap &RM);

/// Fig. 10b -> 10c: returns an equivalent DAG with every prefix condition
/// above every community condition, by building a decision tree over the
/// prefix lists and specializing the original DAG at each leaf.
RouteMapDag hoistPrefixConditions(const RouteMapDag &In);

} // namespace nv

#endif // NV_FRONTEND_ROUTEMAPDAG_H
