//===- Translate.cpp - Configuration-to-NV translation ------------------------===//

#include "frontend/Translate.h"

#include "support/Fatal.h"

#include <algorithm>

using namespace nv;

std::string nv::prefixKeyLiteral(const Prefix &P) {
  std::string S = "(";
  S += std::to_string(P.Addr);
  S += ", ";
  S += std::to_string(P.Len);
  S += "u6)";
  return S;
}

namespace {

const char *Preamble =
    "type ipv4Prefix = (int, int6)\n"
    "type bgpRoute = {comms : set[int]; length : int; lp : int; med : int}\n"
    "type rib = option[bgpRoute]\n"
    "type attribute = dict[ipv4Prefix, rib]\n";

/// OR of `p = (addr, len)` tests over a prefix list's entries.
std::string prefixListTest(const RouterConfig &Router, const std::string &List,
                           DiagnosticEngine &Diags) {
  auto It = Router.PrefixLists.find(List);
  if (It == Router.PrefixLists.end() || It->second.empty()) {
    Diags.error({}, "router " + Router.Name +
                        " references undefined prefix-list " + List);
    return "false";
  }
  std::string S;
  for (size_t I = 0; I < It->second.size(); ++I) {
    if (I)
      S += " || ";
    S += "p = " + prefixKeyLiteral(It->second[I]);
  }
  return It->second.size() > 1 ? "(" + S + ")" : S;
}

/// OR of community-membership tests over a community list's entries.
std::string communityListTest(const RouterConfig &Router,
                              const std::string &List,
                              DiagnosticEngine &Diags) {
  auto It = Router.CommunityLists.find(List);
  if (It == Router.CommunityLists.end() || It->second.empty()) {
    Diags.error({}, "router " + Router.Name +
                        " references undefined community-list " + List);
    return "false";
  }
  std::string S;
  for (size_t I = 0; I < It->second.size(); ++I) {
    if (I)
      S += " || ";
    S += "r.comms[" + std::to_string(It->second[I]) + "]";
  }
  return It->second.size() > 1 ? "(" + S + ")" : S;
}

/// Renders a community-only sub-DAG as an expression over the bound route
/// variable `r` (Fig. 10d's if-chains).
std::string emitCommTree(const RouteMapDag &D, int I,
                         const RouterConfig &Router, DiagnosticEngine &Diags) {
  const RouteMapDag::Node &N = D.node(I);
  switch (N.K) {
  case RouteMapDag::Node::Kind::Drop:
    return "None";
  case RouteMapDag::Node::Kind::Mutate: {
    if (!N.SetLocalPref && !N.SetMetric && !N.AddCommunity)
      return "Some r";
    std::string Fields;
    if (N.SetLocalPref)
      Fields += "lp = " + std::to_string(*N.SetLocalPref);
    if (N.SetMetric) {
      if (!Fields.empty())
        Fields += "; ";
      Fields += "med = " + std::to_string(*N.SetMetric);
    }
    if (N.AddCommunity) {
      if (!Fields.empty())
        Fields += "; ";
      Fields += "comms = r.comms[" + std::to_string(*N.AddCommunity) +
                " := true]";
    }
    return "Some {r with " + Fields + "}";
  }
  case RouteMapDag::Node::Kind::CondCommunity:
    return "if " + communityListTest(Router, N.ListName, Diags) + " then " +
           emitCommTree(D, N.True, Router, Diags) + " else " +
           emitCommTree(D, N.False, Router, Diags);
  case RouteMapDag::Node::Kind::CondPrefix:
    break;
  }
  fatalError("prefix condition below community condition after hoisting");
}

/// One mapIte application per prefix-condition path (disjoint predicates,
/// identity else-branch).
struct PrefixPath {
  std::vector<std::pair<std::string, bool>> Tests; ///< (list, polarity).
  int CommRoot; ///< Community-only subtree handling this path.
};

void collectPaths(const RouteMapDag &D, int I,
                  std::vector<std::pair<std::string, bool>> &Prefix,
                  std::vector<PrefixPath> &Out) {
  const RouteMapDag::Node &N = D.node(I);
  if (N.K == RouteMapDag::Node::Kind::CondPrefix) {
    Prefix.emplace_back(N.ListName, true);
    collectPaths(D, N.True, Prefix, Out);
    Prefix.back().second = false;
    collectPaths(D, N.False, Prefix, Out);
    Prefix.pop_back();
    return;
  }
  Out.push_back({Prefix, I});
}

} // namespace

std::string nv::emitRouteMapFunction(const std::string &FnName,
                                     const RouterConfig &Router,
                                     const RouteMap &RM,
                                     DiagnosticEngine &Diags) {
  RouteMapDag D = hoistPrefixConditions(buildRouteMapDag(RM));
  std::vector<PrefixPath> Paths;
  std::vector<std::pair<std::string, bool>> Cur;
  collectPaths(D, D.Root, Cur, Paths);

  std::string S = "let " + FnName + " (x : attribute) =\n";
  std::string Acc = "x";
  for (const PrefixPath &P : Paths) {
    std::string ValueFn =
        "(fun (v : rib) -> match v with | None -> None | Some r -> " +
        emitCommTree(D, P.CommRoot, Router, Diags) + ")";
    if (P.Tests.empty()) {
      // No prefix condition at all: plain map over every entry.
      Acc = "map " + ValueFn + " (" + Acc + ")";
      continue;
    }
    std::string Pred = "(fun (p : ipv4Prefix) -> ";
    for (size_t I = 0; I < P.Tests.size(); ++I) {
      if (I)
        Pred += " && ";
      std::string T = prefixListTest(Router, P.Tests[I].first, Diags);
      if (P.Tests[I].second) {
        Pred += T;
      } else {
        Pred += "!";
        if (T[0] == '(') {
          Pred += T;
        } else {
          Pred += "(";
          Pred += T;
          Pred += ")";
        }
      }
    }
    Pred += ")";
    Acc = "mapIte " + Pred + " " + ValueFn + " (fun (v : rib) -> v) (" + Acc +
          ")";
  }
  return S + "  " + Acc + "\n";
}

std::string nv::nvAssertReachable(const Prefix &P) {
  return "let assert (u : node) (x : attribute) =\n"
         "  match x[" + prefixKeyLiteral(P) + "] with\n"
         "  | None -> false\n"
         "  | Some r -> true\n";
}

std::optional<TranslationResult>
nv::translateConfigs(const NetworkConfig &Net, DiagnosticEngine &Diags) {
  if (usesRibModel(Net))
    return translateConfigsRib(Net, Diags);
  TranslationResult R;
  auto Links = Net.links(Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  R.Prefixes = Net.allPrefixes();

  std::string S = Preamble;
  S += "let nodes = " + std::to_string(Net.Routers.size()) + "\n";
  S += "let edges = {";
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      S += ";";
    S += std::to_string(Links[I].first) + "n=" +
         std::to_string(Links[I].second) + "n";
  }
  S += "}\n";

  // Route-map functions, one per (router, map).
  auto FnName = [&](size_t Router, const std::string &Map) {
    return "rm_" + std::to_string(Router) + "_" + Map;
  };
  for (size_t I = 0; I < Net.Routers.size(); ++I)
    for (const auto &[Name, RM] : Net.Routers[I].RouteMaps)
      S += emitRouteMapFunction(FnName(I, Name), Net.Routers[I], RM, Diags);

  // The hop-length step applied on every edge.
  S += "let step (y : attribute) =\n"
       "  map (fun (w : rib) -> match w with | None -> None "
       "| Some r -> Some {r with length = r.length + 1}) y\n";

  // trans: per directed edge, out-map of the sender, step, in-map of the
  // receiver.
  S += "let trans (e : edge) (x : attribute) =\n  match e with\n";
  for (const auto &[A, B] : Links) {
    for (int Dir = 0; Dir < 2; ++Dir) {
      uint32_t U = Dir ? B : A, V = Dir ? A : B;
      const RouterConfig &RU = Net.Routers[U];
      const RouterConfig &RV = Net.Routers[V];
      std::string Body = "x";
      for (const BgpNeighbor &N : RU.BgpNeighbors)
        if (N.Router == RV.Name && N.OutMap)
          Body = FnName(U, *N.OutMap) + " (" + Body + ")";
      Body = "step (" + Body + ")";
      for (const BgpNeighbor &N : RV.BgpNeighbors)
        if (N.Router == RU.Name && N.InMap)
          Body = FnName(V, *N.InMap) + " (" + Body + ")";
      S += "  | (" + std::to_string(U) + "n, " + std::to_string(V) + "n) -> " +
           Body + "\n";
    }
  }
  S += "  | _ -> x\n";

  // init: originated prefixes.
  S += "let init (u : node) =\n"
       "  let base : attribute = createDict None in\n"
       "  match u with\n";
  for (size_t I = 0; I < Net.Routers.size(); ++I) {
    auto Origins = Net.Routers[I].originated();
    if (Origins.empty())
      continue;
    std::string Sets = "base";
    for (const Prefix &P : Origins) {
      Sets += "[";
      Sets += prefixKeyLiteral(P);
      Sets += " := Some {comms = {}; length = 0; lp = 100; med = 0}]";
    }
    S += "  | " + std::to_string(I) + "n -> " + Sets + "\n";
  }
  S += "  | _ -> base\n";

  // merge: standard BGP ranking, pointwise over the RIB.
  S += "let better (a : rib) (b : rib) =\n"
       "  match a, b with\n"
       "  | _, None -> true\n"
       "  | None, _ -> false\n"
       "  | Some r1, Some r2 ->\n"
       "    if r1.lp > r2.lp then true\n"
       "    else if r2.lp > r1.lp then false\n"
       "    else if r1.length < r2.length then true\n"
       "    else if r2.length < r1.length then false\n"
       "    else if r1.med <= r2.med then true else false\n";
  S += "let merge (u : node) (x : attribute) (y : attribute) =\n"
       "  combine (fun (a : rib) (b : rib) -> if better a b then a else b) "
       "x y\n";

  if (Diags.hasErrors())
    return std::nullopt;
  R.NvSource = std::move(S);
  return R;
}

//===----------------------------------------------------------------------===//
// Multi-protocol RIB model (Sec. 4.1, Fig. 9)
//===----------------------------------------------------------------------===//

bool nv::usesRibModel(const NetworkConfig &Net) {
  for (const RouterConfig &R : Net.Routers)
    if (R.OspfEnabled || !R.Connected.empty() || R.BgpRedistStatic ||
        R.BgpRedistConnected || R.BgpRedistOspf || R.OspfRedistStatic ||
        R.OspfRedistConnected)
      return true;
  return false;
}

std::string nv::nvAssertReachableRib(const Prefix &P) {
  return "let assert (u : node) (x : attribute) =\n"
         "  match (x[" + prefixKeyLiteral(P) + "]).selected with\n"
         "  | None -> false\n"
         "  | Some p -> true\n";
}

namespace {

const char *RibPreamble =
    "type ipv4Prefix = (int, int6)\n"
    "type bgpRoute = {comms : set[int]; length : int; lp : int; med : int}\n"
    "type ospfRoute = {cost : int}\n"
    // Fig. 9: one slot per protocol plus the selection (0 = connected,
    // 1 = static, 2 = ospf, 3 = bgp).
    "type ribEntry = {bgp : option[bgpRoute]; connected : option[bool]; "
    "ospf : option[ospfRoute]; selected : option[int2]; "
    "static : option[bool]}\n"
    "type attribute = dict[ipv4Prefix, ribEntry]\n"
    "let emptyEntry : ribEntry = {bgp = None; connected = None; ospf = None; "
    "selected = None; static = None}\n"
    "let freshBgp : option[bgpRoute] = Some {comms = {}; length = 1; "
    "lp = 100; med = 0}\n"
    // Administrative-distance selection: connected(0) < static(1) <
    // {ospf (default 110), bgp (170)}. BGP uses the Juniper-style
    // distance: with paths abstracted as lengths there is no AS-path loop
    // detection, and preferring a learned eBGP echo over the local OSPF
    // source that was redistributed into BGP (IOS distance 20) makes
    // mutual redistribution count to infinity.
    "let select (dOspf : int) (r : ribEntry) =\n"
    "  let s =\n"
    "    match r.connected with\n"
    "    | Some _ -> Some 0u2\n"
    "    | None ->\n"
    "      (match r.static with\n"
    "       | Some _ -> Some 1u2\n"
    "       | None ->\n"
    "         (match r.ospf, r.bgp with\n"
    "          | None, None -> None\n"
    "          | Some _, None -> Some 2u2\n"
    "          | None, Some _ -> Some 3u2\n"
    "          | Some _, Some _ ->\n"
    "            if dOspf <= 170 then Some 2u2 else Some 3u2))\n"
    "  in {r with selected = s}\n"
    "let bgpBest (a : option[bgpRoute]) (b : option[bgpRoute]) =\n"
    "  match a, b with\n"
    "  | _, None -> a\n"
    "  | None, _ -> b\n"
    "  | Some r1, Some r2 ->\n"
    "    if r1.lp > r2.lp then a\n"
    "    else if r2.lp > r1.lp then b\n"
    "    else if r1.length < r2.length then a\n"
    "    else if r2.length < r1.length then b\n"
    "    else if r1.med <= r2.med then a else b\n"
    "let ospfBest (a : option[ospfRoute]) (b : option[ospfRoute]) =\n"
    "  match a, b with\n"
    "  | _, None -> a\n"
    "  | None, _ -> b\n"
    "  | Some r1, Some r2 -> if r1.cost <= r2.cost then a else b\n"
    "let localBest (a : option[bool]) (b : option[bool]) =\n"
    "  match a with | Some _ -> a | None -> b\n";

/// The per-edge transfer body of the RIB model: what router U advertises
/// to V, per protocol, with redistribution at U.
std::string ribTransBody(const NetworkConfig &Net, uint32_t U, uint32_t V) {
  const RouterConfig &RU = Net.Routers[U];
  const RouterConfig &RV = Net.Routers[V];
  bool BgpSession = RU.BgpEnabled && RV.BgpEnabled;
  bool OspfAdj = RU.OspfEnabled && RV.OspfEnabled;
  unsigned Cost = 1;
  auto It = RU.OspfCosts.find(RV.Name);
  if (It != RU.OspfCosts.end())
    Cost = It->second;

  // eBGP advertises the *selected* route: as a BGP route when BGP was
  // selected, or as a freshly-originated one when the selected protocol is
  // redistributed into BGP.
  std::string BgpOut = "None";
  if (BgpSession) {
    BgpOut =
        "(match r.selected with\n"
        "         | None -> None\n"
        "         | Some p ->\n"
        "           if p = 3u2 then\n"
        "             (match r.bgp with\n"
        "              | None -> None\n"
        "              | Some b -> Some {b with length = b.length + 1})\n";
    if (RU.BgpRedistStatic)
      BgpOut += "           else if p = 1u2 then freshBgp\n";
    if (RU.BgpRedistConnected)
      BgpOut += "           else if p = 0u2 then freshBgp\n";
    if (RU.BgpRedistOspf)
      BgpOut += "           else if p = 2u2 then freshBgp\n";
    BgpOut += "           else None)";
  }

  // OSPF floods within the OSPF domain, adding the link cost. A router
  // with redistribution *always* originates the external route at the
  // configured metric (like an external LSA): injecting only when no OSPF
  // route is present would let the route's own echo suppress the
  // origination and ratchet the cost forever.
  std::string OspfOut = "None";
  if (OspfAdj) {
    std::string Prop = "(match r.ospf with\n"
                       "         | Some o -> Some {o with cost = o.cost + " +
                       std::to_string(Cost) +
                       "}\n"
                       "         | None -> None)";
    std::string Inject;
    if (RU.OspfRedistStatic || RU.OspfRedistConnected) {
      std::string Has;
      if (RU.OspfRedistStatic)
        Has = "(match r.static with | Some _ -> true | None -> false)";
      if (RU.OspfRedistConnected) {
        if (!Has.empty())
          Has += " || ";
        Has += "(match r.connected with | Some _ -> true | None -> false)";
      }
      Inject = "(if " + Has + " then Some {cost = " +
               std::to_string(RU.OspfRedistMetric + Cost) + "} else None)";
    }
    OspfOut = Inject.empty()
                  ? Prop
                  : "ospfBest " + Prop + "\n        " + Inject;
  }

  return "map (fun (r : ribEntry) ->\n"
         "      {emptyEntry with bgp =\n        " +
         BgpOut + ";\n        ospf =\n        " + OspfOut + "}) x";
}

} // namespace

std::optional<TranslationResult>
nv::translateConfigsRib(const NetworkConfig &Net, DiagnosticEngine &Diags) {
  TranslationResult R;
  auto Links = Net.links(Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  R.Prefixes = Net.allPrefixes();

  std::string S = RibPreamble;
  S += "let nodes = " + std::to_string(Net.Routers.size()) + "\n";
  S += "let edges = {";
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      S += ";";
    S += std::to_string(Links[I].first) + "n=" +
         std::to_string(Links[I].second) + "n";
  }
  S += "}\n";

  // Per-router OSPF administrative distance (Fig. 1's `distance 70`).
  S += "let distOf (u : node) =\n  match u with\n";
  for (size_t I = 0; I < Net.Routers.size(); ++I)
    S += "  | " + std::to_string(I) + "n -> " +
         std::to_string(Net.Routers[I].OspfDistance) + "\n";
  S += "  | _ -> 110\n";

  // trans: per directed edge, per protocol (route-maps are applied in the
  // BGP-only model; combining them with redistribution is future work and
  // diagnosed below).
  for (const RouterConfig &RC : Net.Routers)
    for (const BgpNeighbor &N : RC.BgpNeighbors)
      if (N.InMap || N.OutMap)
        Diags.warning({}, "router " + RC.Name +
                              ": route-maps are ignored in the "
                              "multi-protocol RIB model");
  S += "let trans (e : edge) (x : attribute) =\n  match e with\n";
  for (const auto &[A, B] : Links)
    for (int Dir = 0; Dir < 2; ++Dir) {
      uint32_t U = Dir ? B : A, V = Dir ? A : B;
      S += "  | (" + std::to_string(U) + "n, " + std::to_string(V) +
           "n) ->\n    " + ribTransBody(Net, U, V) + "\n";
    }
  S += "  | _ -> x\n";

  // init: per router, per originated prefix, fill the protocol slots.
  S += "let init (u : node) =\n"
       "  let base : attribute = createDict emptyEntry in\n"
       "  match u with\n";
  for (size_t I = 0; I < Net.Routers.size(); ++I) {
    const RouterConfig &RC = Net.Routers[I];
    auto Origins = RC.originated();
    if (Origins.empty())
      continue;
    auto Has = [](const std::vector<Prefix> &Ps, const Prefix &P) {
      return std::find(Ps.begin(), Ps.end(), P) != Ps.end();
    };
    std::string Sets = "base";
    for (const Prefix &P : Origins) {
      std::string Entry = "select (distOf u) {emptyEntry with ";
      std::string Fields;
      if (Has(RC.Connected, P))
        Fields += "connected = Some true";
      if (Has(RC.StaticRoutes, P)) {
        if (!Fields.empty())
          Fields += "; ";
        Fields += "static = Some true";
      }
      if (Has(RC.OspfNetworks, P)) {
        if (!Fields.empty())
          Fields += "; ";
        Fields += "ospf = Some {cost = 0}";
      }
      if (Has(RC.Networks, P)) {
        if (!Fields.empty())
          Fields += "; ";
        Fields += "bgp = Some {comms = {}; length = 0; lp = 100; med = 0}";
      }
      Entry += Fields + "}";
      Sets += "[";
      Sets += prefixKeyLiteral(P);
      Sets += " := ";
      Sets += Entry;
      Sets += "]";
    }
    S += "  | " + std::to_string(I) + "n -> " + Sets + "\n";
  }
  S += "  | _ -> base\n";

  // merge: protocol-wise bests, then re-select by administrative distance.
  S += "let merge (u : node) (x : attribute) (y : attribute) =\n"
       "  combine (fun (a : ribEntry) (b : ribEntry) ->\n"
       "    select (distOf u)\n"
       "      {bgp = bgpBest a.bgp b.bgp;\n"
       "       connected = localBest a.connected b.connected;\n"
       "       ospf = ospfBest a.ospf b.ospf;\n"
       "       selected = None;\n"
       "       static = localBest a.static b.static}) x y\n";

  if (Diags.hasErrors())
    return std::nullopt;
  R.NvSource = std::move(S);
  return R;
}
