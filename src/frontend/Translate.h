//===- Translate.h - Configuration-to-NV translation ------------*- C++ -*-===//
//
// Part of nv-cpp. Sec. 4's translation: router configurations become an NV
// program whose attribute is the RIB of Fig. 9 — a dict from ipv4Prefix to
// an optional BGP route — with route-maps compiled through the DAG IR into
// mapIte chains (prefix conditions as key predicates, Fig. 10d) and
// community logic as if-chains over values.
//
//===----------------------------------------------------------------------===//

#ifndef NV_FRONTEND_TRANSLATE_H
#define NV_FRONTEND_TRANSLATE_H

#include "frontend/Config.h"
#include "frontend/RouteMapDag.h"

#include <optional>
#include <string>

namespace nv {

struct TranslationResult {
  std::string NvSource;          ///< Complete NV program (no assert).
  std::vector<Prefix> Prefixes;  ///< All originated prefixes, sorted.
};

/// Translates a parsed configuration into NV. Null (with diagnostics) when
/// a route-map references an undefined list or a neighbor is asymmetric.
/// Dispatches to the Fig. 9 RIB model when usesRibModel(Net) holds.
std::optional<TranslationResult> translateConfigs(const NetworkConfig &Net,
                                                  DiagnosticEngine &Diags);

/// The multi-protocol translation (BGP + OSPF + static + connected with
/// redistribution and administrative-distance selection).
std::optional<TranslationResult>
translateConfigsRib(const NetworkConfig &Net, DiagnosticEngine &Diags);

/// An `assert` declaration checking that every router's RIB holds a route
/// to \p P (control-plane reachability for one destination).
std::string nvAssertReachable(const Prefix &P);

/// The multi-protocol variant: the RIB entry for \p P has selected some
/// protocol's route (Fig. 9's `selected` field).
std::string nvAssertReachableRib(const Prefix &P);

/// True when the configuration uses OSPF or redistribution anywhere, in
/// which case translateConfigs emits the full Fig. 9 RIB model (per-prefix
/// records with ospf/bgp/static/connected slots and administrative-
/// distance selection) instead of the BGP-only model.
bool usesRibModel(const NetworkConfig &Net);

/// Renders one route-map as a standalone NV function of type
/// attribute -> attribute named \p FnName (exposed for tests and for the
/// Fig. 10 worked example).
std::string emitRouteMapFunction(const std::string &FnName,
                                 const RouterConfig &Router,
                                 const RouteMap &RM, DiagnosticEngine &Diags);

/// NV literal of a prefix key: "(addr, lenu6)".
std::string prefixKeyLiteral(const Prefix &P);

} // namespace nv

#endif // NV_FRONTEND_TRANSLATE_H
