//===- Simulator.cpp - Algorithm 1 control-plane simulator ------------------===//

#include "sim/Simulator.h"

#include "support/Fatal.h"

#include <deque>
#include <map>

using namespace nv;

SimResult nv::simulate(const Program &P, ProtocolEvaluator &Eval,
                       const SimOptions &Opts) {
  uint32_t N = P.numNodes();
  if (N == 0)
    fatalError("cannot simulate a program without a topology");

  // Out-neighbors per node over directed edges.
  std::vector<std::vector<uint32_t>> Neighbors(N);
  for (const auto &[U, V] : P.directedEdges())
    Neighbors[U].push_back(V);

  SimResult R;
  R.Labels.assign(N, nullptr);

  // received(v): routes most recently heard from each in-neighbor, plus
  // the node's own initial route stored under its own id (Algorithm 1,
  // line 8) so a full re-merge is just a fold over this table.
  std::vector<std::map<uint32_t, const Value *>> Received(N);

  std::deque<uint32_t> Queue;
  std::vector<bool> InQueue(N, false);

  auto Push = [&](uint32_t U) {
    if (!InQueue[U]) {
      InQueue[U] = true;
      Queue.push_back(U);
    }
  };
  auto Update = [&](uint32_t V, const Value *Route) {
    if (Route != R.Labels[V]) {
      R.Labels[V] = Route;
      Push(V);
    }
  };

  for (uint32_t U = 0; U < N; ++U) {
    R.Labels[U] = Eval.init(U);
    Received[U][U] = R.Labels[U];
    Push(U);
  }

  while (!Queue.empty()) {
    if (++R.Stats.Pops > Opts.MaxSteps)
      return R; // Converged stays false.
    uint32_t U = Queue.front();
    Queue.pop_front();
    InQueue[U] = false;

    // Propagate u's current route to all of its neighbors.
    for (uint32_t V : Neighbors[U]) {
      const Value *New = Eval.trans(U, V, R.Labels[U]);
      ++R.Stats.TransCalls;

      auto It = Received[V].find(U);
      if (It != Received[V].end()) {
        const Value *Old = It->second;
        It->second = New;
        if (Old == New)
          continue; // Nothing changed on this edge.
        ++R.Stats.MergeCalls;
        if (Opts.IncrementalMerge && Eval.merge(V, Old, New) == New) {
          // Incremental update: the new route dominates the stale one, so
          // merging it into the current label is enough (lines 15-17).
          ++R.Stats.MergeCalls;
          Update(V, Eval.merge(V, R.Labels[V], New));
        } else {
          // Full update: re-merge everything received (line 18). The
          // node's init is in the table under its own id.
          ++R.Stats.FullMerges;
          const Value *Acc = nullptr;
          for (const auto &[From, Route] : Received[V]) {
            if (!Acc) {
              Acc = Route;
              continue;
            }
            ++R.Stats.MergeCalls;
            Acc = Eval.merge(V, Acc, Route);
          }
          Update(V, Acc);
        }
      } else {
        Received[V][U] = New;
        ++R.Stats.MergeCalls;
        Update(V, Eval.merge(V, R.Labels[V], New));
      }
    }
  }

  R.Converged = true;
  return R;
}

std::vector<uint32_t> nv::checkAsserts(ProtocolEvaluator &Eval,
                                       const SimResult &R) {
  std::vector<uint32_t> Failed;
  for (uint32_t U = 0; U < R.Labels.size(); ++U)
    if (!Eval.assertAt(U, R.Labels[U]))
      Failed.push_back(U);
  return Failed;
}
