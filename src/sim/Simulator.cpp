//===- Simulator.cpp - Algorithm 1 control-plane simulator ------------------===//

#include "sim/Simulator.h"

#include <algorithm>

using namespace nv;

namespace {

/// The simulator's contribution to the GC root set: every label and every
/// route in the receive table must survive a collection triggered at the
/// pop-loop safe point. Registered for the duration of one simulate()
/// call; Ref remapping is handled arena-side (values are remapped in
/// place), so notifyRemap needs no work here.
class SimRoots final : public BddManager::GcRootProvider {
public:
  SimRoots(NvContext &Ctx, const std::vector<const Value *> &Labels,
           const std::vector<const Value *> &Received)
      : Ctx(Ctx), Labels(Labels), Received(Received) {
    Ctx.Mgr.addRootProvider(this);
  }
  ~SimRoots() override { Ctx.Mgr.removeRootProvider(this); }

  void appendRoots(std::vector<BddManager::Ref> &Out) override {
    for (const Value *V : Labels)
      Ctx.collectValueRoots(V, Out);
    for (const Value *V : Received)
      Ctx.collectValueRoots(V, Out);
  }

private:
  NvContext &Ctx;
  const std::vector<const Value *> &Labels;
  const std::vector<const Value *> &Received;
};

} // namespace

SimResult nv::simulate(const Program &P, ProtocolEvaluator &Eval,
                       const SimOptions &Opts) {
  uint32_t N = P.numNodes();
  if (N == 0) {
    SimResult R;
    R.Outcome = {RunStatus::EvalError,
                 "cannot simulate a program without a topology", ""};
    if (Opts.Diags)
      Opts.Diags->error({}, R.Outcome.Detail);
    return R;
  }

  // received(v): routes most recently heard from each in-neighbor, plus
  // the node's own initial route stored under its own id (Algorithm 1,
  // line 8) so a full re-merge is just a fold over this table.
  //
  // Representation: one flat array of slots, built once from the topology.
  // For each node v, slots [RecvOffset[v], RecvOffset[v+1]) correspond to
  // the sorted sender list RecvFrom (v's in-neighbors plus v itself), so a
  // full re-merge is a linear scan in ascending sender order — the same
  // fold order a std::map<sender, route> table gives, with no per-lookup
  // tree walk and no per-edge allocation. A null slot means "nothing
  // received from this sender yet".
  std::vector<std::vector<uint32_t>> Senders(N);
  for (uint32_t U = 0; U < N; ++U)
    Senders[U].push_back(U);
  // Out-neighbors per node over directed edges; slot indices filled below.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> Out(N);
  for (const auto &[U, V] : P.directedEdges()) {
    Out[U].push_back({V, 0});
    Senders[V].push_back(U);
  }
  std::vector<uint32_t> RecvOffset(N + 1, 0);
  for (uint32_t V = 0; V < N; ++V) {
    auto &S = Senders[V];
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
    RecvOffset[V + 1] = RecvOffset[V] + static_cast<uint32_t>(S.size());
  }
  auto SlotOf = [&](uint32_t V, uint32_t Sender) {
    const auto &S = Senders[V];
    auto It = std::lower_bound(S.begin(), S.end(), Sender);
    return RecvOffset[V] + static_cast<uint32_t>(It - S.begin());
  };
  for (uint32_t U = 0; U < N; ++U)
    for (auto &[V, Slot] : Out[U])
      Slot = SlotOf(V, U);
  std::vector<const Value *> Received(RecvOffset[N], nullptr);

  SimResult R;
  R.Labels.assign(N, nullptr);

  // Worklist: a fixed-capacity ring buffer of node indices. The InQueue
  // guard caps occupancy at one entry per node, so N slots always suffice
  // and pushes/pops never allocate.
  std::vector<uint32_t> Ring(N);
  uint32_t QHead = 0, QTail = 0, QCount = 0;
  std::vector<bool> InQueue(N, false);

  auto Push = [&](uint32_t U) {
    if (!InQueue[U]) {
      InQueue[U] = true;
      Ring[QTail] = U;
      QTail = QTail + 1 == N ? 0 : QTail + 1;
      ++QCount;
    }
  };
  auto Update = [&](uint32_t V, const Value *Route) {
    if (Route != R.Labels[V]) {
      R.Labels[V] = Route;
      Push(V);
    }
  };

  // Keep the label and receive tables rooted across the GC safe points
  // below: everything else live at a safe point is pinned (evaluator
  // globals and partial applications) or cached as a root (predicates).
  NvContext &Ctx = Eval.ctx();
  SimRoots Roots(Ctx, R.Labels, Received);

  // Enforce this run's budget for the duration of the fixpoint; an outer
  // governor (a CLI deadline, a sharded job's budget) stays on the chain
  // and is polled at the same safe points.
  Governor::Scope Guard(Opts.Budget);
  try {
  for (uint32_t U = 0; U < N; ++U) {
    R.Labels[U] = Eval.init(U);
    Received[SlotOf(U, U)] = R.Labels[U];
    Push(U);
  }

  while (QCount != 0) {
    ++R.Stats.Pops;
    // Safe point: no un-rooted diagram Refs are live between pops. The
    // governor counts one step per pop (the unified step budget that
    // subsumes the old MaxSteps field) and checks deadline/cancellation;
    // a trip lands in the catch below with the labels built so far.
    Governor::pollSafePoint(GovSite::SimPop);
    Ctx.Mgr.maybeCollectAtSafePoint();

    uint32_t U = Ring[QHead];
    QHead = QHead + 1 == N ? 0 : QHead + 1;
    --QCount;
    InQueue[U] = false;

    // Propagate u's current route to all of its neighbors.
    for (const auto &[V, Slot] : Out[U]) {
      const Value *New = Eval.trans(U, V, R.Labels[U]);
      ++R.Stats.TransCalls;

      const Value *Old = Received[Slot];
      if (Old) {
        Received[Slot] = New;
        if (Old == New)
          continue; // Nothing changed on this edge.
        ++R.Stats.MergeCalls;
        if (Opts.IncrementalMerge && Eval.merge(V, Old, New) == New) {
          // Incremental update: the new route dominates the stale one, so
          // merging it into the current label is enough (lines 15-17).
          ++R.Stats.MergeCalls;
          Update(V, Eval.merge(V, R.Labels[V], New));
        } else {
          // Full update: re-merge everything received (line 18). The
          // node's init is in the table under its own id.
          ++R.Stats.FullMerges;
          const Value *Acc = nullptr;
          for (uint32_t S = RecvOffset[V]; S < RecvOffset[V + 1]; ++S) {
            const Value *Route = Received[S];
            if (!Route)
              continue;
            if (!Acc) {
              Acc = Route;
              continue;
            }
            ++R.Stats.MergeCalls;
            Acc = Eval.merge(V, Acc, Route);
          }
          Update(V, Acc);
        }
      } else {
        Received[Slot] = New;
        ++R.Stats.MergeCalls;
        Update(V, Eval.merge(V, R.Labels[V], New));
      }
    }
  }

  R.Converged = true;
  } catch (const EngineError &E) {
    // Structured degradation: Converged stays false, Labels holds the
    // partial state (rooted by SimRoots, so it survived any GC), and the
    // outcome says which budget tripped at which safe point.
    R.Outcome = E.outcome();
    if (Opts.Diags)
      Opts.Diags->error(
          SourceLoc{},
          "simulation did not converge: " + R.Outcome.str() +
              (R.Outcome.Status == RunStatus::StepBudgetExceeded
                   ? " — the policy may have no stable state (paper "
                     "footnote 2); raise the step budget if it is just slow"
                   : ""));
  }
  return R;
}

std::vector<uint32_t> nv::checkAsserts(ProtocolEvaluator &Eval,
                                       const SimResult &R) {
  std::vector<uint32_t> Failed;
  for (uint32_t U = 0; U < R.Labels.size(); ++U)
    if (!Eval.assertAt(U, R.Labels[U]))
      Failed.push_back(U);
  return Failed;
}
