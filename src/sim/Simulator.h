//===- Simulator.h - Algorithm 1 control-plane simulator --------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist simulator of Algorithm 1 (Sec. 5.1). It computes a stable
/// state L of the network: for every node u, L(u) equals the merge of
/// init(u) with the transfer of every neighbor's label. The simulator is
/// protocol-agnostic — it executes whatever init/trans/merge a NV program
/// defines, through the ProtocolEvaluator interface (interpreted or
/// closure-compiled), over plain values or MTBDD-backed map attributes.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SIM_SIMULATOR_H
#define NV_SIM_SIMULATOR_H

#include "core/Ast.h"
#include "eval/ProgramEvaluator.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <vector>

namespace nv {

struct SimOptions {
  /// Apply the ShapeShifter incremental-merge trick (Algorithm 1, lines
  /// 15-17): when merge(old, new) == new, merge new into the current label
  /// instead of re-merging everything received. Disable for the ablation
  /// bench.
  bool IncrementalMerge = true;

  /// Abort if the queue pops exceed this bound (the stable-routing fixpoint
  /// is not guaranteed to terminate for non-monotone policies; see the
  /// paper's footnote 2).
  uint64_t MaxSteps = 100'000'000;

  /// When set, exceeding MaxSteps reports an error here (in addition to
  /// the result's Converged = false).
  DiagnosticEngine *Diags = nullptr;
};

struct SimStats {
  uint64_t Pops = 0;       ///< Nodes processed off the worklist.
  uint64_t TransCalls = 0; ///< Transfer-function evaluations.
  uint64_t MergeCalls = 0; ///< Merge-function evaluations.
  uint64_t FullMerges = 0; ///< Line-18 full re-merges.
};

struct SimResult {
  bool Converged = false;
  std::vector<const Value *> Labels; ///< L(u) per node.
  SimStats Stats;
};

/// Runs Algorithm 1 on \p P with semantics \p Eval.
SimResult simulate(const Program &P, ProtocolEvaluator &Eval,
                   const SimOptions &Opts = {});

/// Evaluates the program's assert declaration on a converged state;
/// returns the nodes whose assertion failed (empty = property holds).
std::vector<uint32_t> checkAsserts(ProtocolEvaluator &Eval,
                                   const SimResult &R);

} // namespace nv

#endif // NV_SIM_SIMULATOR_H
