//===- Simulator.h - Algorithm 1 control-plane simulator --------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist simulator of Algorithm 1 (Sec. 5.1). It computes a stable
/// state L of the network: for every node u, L(u) equals the merge of
/// init(u) with the transfer of every neighbor's label. The simulator is
/// protocol-agnostic — it executes whatever init/trans/merge a NV program
/// defines, through the ProtocolEvaluator interface (interpreted or
/// closure-compiled), over plain values or MTBDD-backed map attributes.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SIM_SIMULATOR_H
#define NV_SIM_SIMULATOR_H

#include "core/Ast.h"
#include "eval/ProgramEvaluator.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"

#include <cstdint>
#include <vector>

namespace nv {

struct SimOptions {
  /// Apply the ShapeShifter incremental-merge trick (Algorithm 1, lines
  /// 15-17): when merge(old, new) == new, merge new into the current label
  /// instead of re-merging everything received. Disable for the ablation
  /// bench.
  bool IncrementalMerge = true;

  /// Resource limits for this run, enforced at safe points (worklist pop,
  /// MTBDD operations, evaluator allocation). Budget.MaxSteps bounds the
  /// queue pops — the stable-routing fixpoint is not guaranteed to
  /// terminate for non-monotone policies (paper footnote 2) — and subsumes
  /// the old ad-hoc MaxSteps field. The run stops with a structured
  /// RunOutcome instead of spinning or aborting.
  RunBudget Budget{/*DeadlineMs=*/0, /*MaxSteps=*/100'000'000};

  /// When set, a tripped budget reports an error here (in addition to the
  /// result's Outcome / Converged = false).
  DiagnosticEngine *Diags = nullptr;
};

struct SimStats {
  uint64_t Pops = 0;       ///< Nodes processed off the worklist.
  uint64_t TransCalls = 0; ///< Transfer-function evaluations.
  uint64_t MergeCalls = 0; ///< Merge-function evaluations.
  uint64_t FullMerges = 0; ///< Line-18 full re-merges.
};

struct SimResult {
  bool Converged = false;
  std::vector<const Value *> Labels; ///< L(u) per node.
  SimStats Stats;
  /// How the run ended. On a non-Ok outcome Converged is false and Labels
  /// holds the partial state at the tripped safe point (entries may be
  /// null for nodes never reached) — partial diagnostics, not garbage.
  RunOutcome Outcome;
};

/// Runs Algorithm 1 on \p P with semantics \p Eval. Never aborts on
/// well-formed input: budget trips, cancellation, injected faults and
/// user-triggerable evaluation errors all end the run with a structured
/// Outcome.
SimResult simulate(const Program &P, ProtocolEvaluator &Eval,
                   const SimOptions &Opts = {});

/// Evaluates the program's assert declaration on a converged state;
/// returns the nodes whose assertion failed (empty = property holds).
std::vector<uint32_t> checkAsserts(ProtocolEvaluator &Eval,
                                   const SimResult &R);

} // namespace nv

#endif // NV_SIM_SIMULATOR_H
