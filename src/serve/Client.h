//===- Client.h - Serve-protocol client ------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clients for the serve protocol. ServeClient is the minimal transport:
/// connect to the daemon's Unix socket (with a connect deadline), send
/// one request line, read one response line (with a read deadline). On
/// top of it, ResilientClient retries transient failures — connection
/// refused (daemon restarting under a supervisor), connection reset
/// (worker killed mid-request), and `overloaded` responses — with capped
/// exponential backoff plus jitter, honoring the server's retry_after_ms
/// hint. A read *timeout* is deliberately not transient: the request may
/// still be running, and re-sending it would double the work.
///
/// Used by `nv req` (the CLI side of the scripted CI session), chaos CI,
/// and the socket-level tests.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_CLIENT_H
#define NV_SERVE_CLIENT_H

#include <cstdint>
#include <memory>
#include <string>

namespace nv {

struct ClientOptions {
  /// Deadline for the connect itself. 0 = block forever.
  unsigned ConnectTimeoutMs = 5000;
  /// Deadline for reading one response line. Generous by default: a
  /// verification request legitimately runs for a while. 0 = forever.
  unsigned ReadTimeoutMs = 120000;
};

class ServeClient {
public:
  /// Connects to the daemon at \p SocketPath; null (with \p Error set) on
  /// failure. Respects Opts.ConnectTimeoutMs.
  static std::unique_ptr<ServeClient> connect(const std::string &SocketPath,
                                              std::string &Error,
                                              const ClientOptions &Opts = {});

  ~ServeClient();
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Sends one request line and reads one response line (the newline is
  /// added/stripped here). False (with \p Error set) on a transport
  /// failure, a daemon that closed the connection, or the read deadline
  /// expiring (distinguish with timedOut()).
  bool request(const std::string &Line, std::string &Response,
               std::string &Error);

  /// Sends without waiting for the response (the disconnect-cancellation
  /// test wants to hang up mid-request).
  bool send(const std::string &Line, std::string &Error);

  /// True when the last failed request/readLine hit ReadTimeoutMs rather
  /// than a transport error. `nv req` maps this to exit 3.
  bool timedOut() const { return TimedOut; }

  int fd() const { return Fd; }

private:
  explicit ServeClient(int Fd, const ClientOptions &Opts)
      : Fd(Fd), Opts(Opts) {}

  bool readLine(std::string &Out, std::string &Error);

  int Fd;
  ClientOptions Opts;
  bool TimedOut = false;
  std::string Buf;
};

//===----------------------------------------------------------------------===//
// Retry / backoff
//===----------------------------------------------------------------------===//

struct RetryOptions {
  /// Total attempts (first try included). 1 = no retries.
  unsigned MaxAttempts = 4;
  unsigned BackoffBaseMs = 100; ///< Delay scale for the first retry.
  unsigned BackoffCapMs = 2000; ///< Backoff plateau.
  uint64_t JitterSeed = 0x9e3779b97f4a7c15ull; ///< Deterministic in tests.
};

/// Pure backoff schedule (unit-tested): the delay before retry number
/// \p Attempt (1-based). Exponential Base * 2^(Attempt-1) capped at Cap,
/// then jittered into [delay/2, delay] via the xorshift64 \p JitterState
/// so a fleet of shed clients does not retry in lockstep; never below
/// the server's \p RetryAfterMs hint (0 = no hint).
unsigned retryDelayMs(unsigned Attempt, const RetryOptions &Opts,
                      uint64_t &JitterState, unsigned RetryAfterMs);

/// A lazily-connecting client that survives daemon restarts and load
/// shedding: each request() connects on demand, classifies failures, and
/// retries transient ones (connect refused/absent while the supervisor
/// restarts the worker, connection reset when the worker died, daemon
/// closed, and `overloaded` responses) after a backoff that honors the
/// response's retry_after_ms. Non-transient failures — an error response
/// the daemon produced deliberately, or a read timeout — return at once.
class ResilientClient {
public:
  ResilientClient(std::string SocketPath, ClientOptions CO = {},
                  RetryOptions RO = {})
      : Path(std::move(SocketPath)), CO(CO), RO(RO),
        JitterState(RO.JitterSeed ? RO.JitterSeed : 1) {}

  /// Sends \p Line, retrying transients up to RO.MaxAttempts total
  /// attempts. True with \p Response set on any response from the daemon
  /// (including error responses — the caller owns the exit taxonomy);
  /// false with \p Error when attempts are exhausted or a non-transient
  /// transport failure (e.g. read timeout) occurred.
  bool request(const std::string &Line, std::string &Response,
               std::string &Error);

  /// True when the last failed request() ended on a read timeout.
  bool timedOut() const { return TimedOut; }
  /// Transient failures retried over this client's lifetime.
  uint64_t retries() const { return Retries; }

private:
  std::string Path;
  ClientOptions CO;
  RetryOptions RO;
  uint64_t JitterState;
  std::unique_ptr<ServeClient> Conn; ///< Lazy; dropped on any failure.
  bool TimedOut = false;
  uint64_t Retries = 0;
};

} // namespace nv

#endif // NV_SERVE_CLIENT_H
