//===- Client.h - Serve-protocol client ------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serve protocol: connect to the
/// daemon's Unix socket, send one request line, read one response line.
/// Used by `nv req` (the CLI side of the scripted CI session) and by the
/// socket-level tests.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_CLIENT_H
#define NV_SERVE_CLIENT_H

#include <memory>
#include <string>

namespace nv {

class ServeClient {
public:
  /// Connects to the daemon at \p SocketPath; null (with \p Error set) on
  /// failure.
  static std::unique_ptr<ServeClient> connect(const std::string &SocketPath,
                                              std::string &Error);

  ~ServeClient();
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Sends one request line and reads one response line (the newline is
  /// added/stripped here). False (with \p Error set) on a transport
  /// failure or a daemon that closed the connection.
  bool request(const std::string &Line, std::string &Response,
               std::string &Error);

  /// Sends without waiting for the response (the disconnect-cancellation
  /// test wants to hang up mid-request).
  bool send(const std::string &Line, std::string &Error);

  int fd() const { return Fd; }

private:
  explicit ServeClient(int Fd) : Fd(Fd) {}

  bool readLine(std::string &Out, std::string &Error);

  int Fd;
  std::string Buf;
};

} // namespace nv

#endif // NV_SERVE_CLIENT_H
