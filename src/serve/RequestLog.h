//===- RequestLog.h - Journal-backed request-queue crash log ----*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's crash log: every accepted request is journaled
/// before it runs, and its response is journaled when it finishes, using
/// the same append-only checksummed Journal format the analysis engines
/// checkpoint with (support/Journal.h). A daemon killed mid-request
/// leaves accepted-without-done entries behind; on restart those pending
/// requests replay in acceptance order against the fresh server state,
/// and their outcomes are journaled, so the request queue always drains
/// durably — a client that journals its `load`s (with client-chosen
/// session ids) gets its whole session rebuilt before the replayed
/// queries run.
///
/// Entry format (UnitRecord):
///   key "r<seq>", fields:
///     event=accepted  body=<request JSON line>
///     event=done      code=<exit code>  outcome=<RunOutcome string>
///
/// The torn-tail / corrupt-interior distinction is inherited from the
/// Journal layer: a tail torn by a crash inside an append is truncated
/// and that record is simply lost (an accepted-torn request re-runs
/// nothing; a done-torn request replays), while interior corruption or a
/// binding mismatch is a hard error — the daemon refuses to start against
/// a log that is not its own.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_REQUESTLOG_H
#define NV_SERVE_REQUESTLOG_H

#include "support/Resume.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nv {

class RequestLog {
public:
  struct PendingRequest {
    std::string Id;   ///< "r<seq>" journal key.
    std::string Body; ///< The accepted request's JSON line.
  };

  struct OpenResult {
    std::unique_ptr<RequestLog> Log;
    std::string Error; ///< Set when Log is null.
    bool Hard = false; ///< Corruption/binding mismatch: exit 2.
  };

  /// The serve journal binding. Socket path and thread count are
  /// provenance only: restarting the daemon elsewhere must still replay.
  static RunBinding binding();

  /// Opens (or creates) the request log at \p Path, replaying its history
  /// to compute the pending set. Mirrors ResumeLog::open's three cases:
  /// fresh file, valid log (torn tail truncated), or hard failure.
  static OpenResult open(const std::string &Path);

  /// Durably records acceptance of request \p Id (one frame + fdatasync).
  /// Thread-safe. I/O failure disables further writes with one stderr
  /// warning — the log is a recovery aid, never a request-path dependency.
  void recordAccepted(const std::string &Id, const std::string &Body);

  /// Durably records completion of request \p Id.
  void recordDone(const std::string &Id, int Code, const std::string &Outcome);

  /// Requests accepted but not completed as of open(), in acceptance
  /// order. The server replays these at startup.
  const std::vector<PendingRequest> &pending() const { return Pending; }

  /// First request sequence number this process should assign (one past
  /// the largest journaled id, so ids never collide across restarts).
  uint64_t nextSeq() const { return NextSeq; }

  size_t acceptedCount() const { return Accepted; }
  size_t doneCount() const { return Done; }
  bool tornTailDropped() const { return TornTail; }
  const std::string &path() const { return Path; }

private:
  RequestLog() = default;

  std::string Path;
  bool TornTail = false;
  size_t Accepted = 0; ///< Entries loaded at open (history), not live.
  size_t Done = 0;
  uint64_t NextSeq = 1;
  std::vector<PendingRequest> Pending;

  std::mutex M;
  std::unique_ptr<JournalWriter> Writer; ///< Guarded by M.
  bool WarnedBroken = false;             ///< Guarded by M.

  void append(const UnitRecord &R);
};

} // namespace nv

#endif // NV_SERVE_REQUESTLOG_H
