//===- Json.cpp - Minimal JSON value, parser, and writer ----------------------===//

#include "serve/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace nv;

void Json::set(const std::string &Key, Json V) {
  for (auto &M : Members) {
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(Key, std::move(V));
}

const Json *Json::get(const std::string &Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Default) const {
  const Json *V = get(Key);
  return V && V->isString() ? V->str() : Default;
}

double Json::getNumber(const std::string &Key, double Default) const {
  const Json *V = get(Key);
  return V && V->isNumber() ? V->number() : Default;
}

bool Json::getBool(const std::string &Key, bool Default) const {
  const Json *V = get(Key);
  return V && V->isBool() ? V->boolean() : Default;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void dumpNumber(double D, std::string &Out) {
  // Integers (the common case: counts, exit codes, node ids) render
  // without a fractional part so responses are stable and greppable.
  if (std::isfinite(D) && D == std::floor(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
    Out += Buf;
    return;
  }
  if (!std::isfinite(D)) { // JSON has no inf/nan; null is the least-bad.
    Out += "null";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", D);
  Out += Buf;
}

void dumpValue(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.boolean() ? "true" : "false";
    break;
  case Json::Kind::Number:
    dumpNumber(J.number(), Out);
    break;
  case Json::Kind::String:
    dumpString(J.str(), Out);
    break;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : J.items()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(E, Out);
    }
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, V] : J.members()) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(Key, Out);
      Out += ':';
      dumpValue(V, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &T) : Text(T) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected ") + Word);
    Pos += Len;
    return true;
  }

  void appendUtf8(uint32_t Cp, std::string &Out) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool hex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp = 0;
        if (!hex4(Cp))
          return false;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          if (Text.compare(Pos, 2, "\\u") != 0)
            return fail("lone high surrogate");
          Pos += 2;
          uint32_t Low = 0;
          if (!hex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("bad low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return fail("lone low surrogate");
        }
        appendUtf8(Cp, Out);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Json &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected number");
    char *End = nullptr;
    std::string Tok = Text.substr(Start, Pos - Start);
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = Json(D);
    return true;
  }

  bool parseValue(Json &Out, unsigned Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = Json::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (!consume(':'))
          return false;
        Json V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.set(Key, std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out = Json::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        Json V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.push(std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = Json(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = Json(false);
      return true;
    }
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = Json();
      return true;
    }
    return parseNumber(Out);
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string &Error) {
  Parser P(Text);
  Json V;
  if (!P.parseValue(V, 0)) {
    Error = P.Error;
    Out = Json();
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    Error = "trailing garbage at offset " + std::to_string(P.Pos);
    Out = Json();
    return false;
  }
  Out = std::move(V);
  return true;
}
