//===- Supervisor.cpp - Supervised worker restarts for nv serve ---------------===//

#include "serve/Supervisor.h"

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

using namespace nv;

namespace {

// Shared with the signal handlers; the handler only reads/writes these
// and calls kill(), all async-signal-safe.
volatile sig_atomic_t StopRequested = 0;
volatile pid_t WorkerPid = 0;

void forwardStop(int /*Sig*/) {
  StopRequested = 1;
  pid_t Pid = WorkerPid;
  if (Pid > 0)
    kill(Pid, SIGTERM); // the worker's GracefulShutdown drains on this
}

/// Sleeps ~Ms but returns early once a stop was requested (nanosleep is
/// interrupted by the forwarding handler).
void sleepInterruptible(unsigned Ms) {
  struct timespec Left;
  Left.tv_sec = Ms / 1000;
  Left.tv_nsec = static_cast<long>(Ms % 1000) * 1000000L;
  while (!StopRequested && nanosleep(&Left, &Left) == -1 && errno == EINTR)
    continue;
}

} // namespace

int nv::superviseLoop(const std::function<int(uint64_t)> &Worker,
                      const SupervisorOptions &Opts) {
  struct sigaction Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sa_handler = forwardStop;
  sigemptyset(&Sa.sa_mask);
  sigaction(SIGINT, &Sa, nullptr);
  sigaction(SIGTERM, &Sa, nullptr);

  uint64_t Generation = 0;
  unsigned ConsecutiveFailures = 0;
  int Restarts = 0;
  std::string LastExit; // previous worker's ChildExit::describe(), "" = none
  for (;;) {
    pid_t Pid = fork();
    if (Pid < 0) {
      std::fprintf(stderr, "nv serve supervisor: fork failed: %s\n",
                   std::strerror(errno));
      return 4;
    }
    if (Pid == 0) {
      // Child: drop the supervisor's forwarding handlers before anything
      // can deliver a signal (a handler firing here with WorkerPid still
      // 0 would kill(0, ...) — the whole process group).
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      WorkerPid = 0;
      // Scripts (chaos.sh, operators) read the generation from the
      // environment; the worker code gets it as an argument. The health
      // verb surfaces why the previous life ended (signal vs code).
      setenv("NV_SERVE_RESTARTS", std::to_string(Generation).c_str(), 1);
      if (!LastExit.empty())
        setenv("NV_SERVE_LAST_EXIT", LastExit.c_str(), 1);
      _exit(Worker(Generation));
    }

    WorkerPid = Pid;
    // chaos.sh greps this line to aim its kill -9 at the worker.
    std::fprintf(stderr, "nv serve supervisor: worker pid %ld generation %llu\n",
                 static_cast<long>(Pid),
                 static_cast<unsigned long long>(Generation));
    auto LaunchNs = [] {
      struct timespec Ts;
      clock_gettime(CLOCK_MONOTONIC, &Ts);
      return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
             static_cast<uint64_t>(Ts.tv_nsec);
    };
    uint64_t T0 = LaunchNs();

    ChildExit Exit;
    if (waitForChild(Pid, /*Block=*/true, Exit) != 1) {
      WorkerPid = 0;
      std::fprintf(stderr, "nv serve supervisor: waitpid failed: %s\n",
                   std::strerror(errno));
      return 4;
    }
    WorkerPid = 0;
    LastExit = Exit.describe();

    uint64_t UptimeMs = (LaunchNs() - T0) / 1000000ull;
    bool Deliberate = !Exit.Signaled && Exit.Code <= 2;
    if (Deliberate || StopRequested) {
      int Code = Exit.Signaled ? 3 : Exit.Code;
      std::fprintf(stderr,
                   "nv serve supervisor: worker exited %d; supervision ends\n",
                   Code);
      return Code;
    }

    // Abnormal exit (signal, or exit 3/4): restart with backoff.
    if (UptimeMs >= Opts.HealthyResetMs)
      ConsecutiveFailures = 0; // it was healthy; treat this as a one-off
    ++ConsecutiveFailures;
    ++Restarts;
    if (Opts.MaxRestarts >= 0 && Restarts > Opts.MaxRestarts) {
      std::fprintf(stderr,
                   "nv serve supervisor: restart budget of %d exhausted\n",
                   Opts.MaxRestarts);
      return 3;
    }
    unsigned DelayMs = nextRestartDelayMs(ConsecutiveFailures,
                                          Opts.BackoffBaseMs,
                                          Opts.BackoffCapMs);
    std::fprintf(stderr,
                 "nv serve supervisor: worker died (%s) after %llu ms; "
                 "restarting in %u ms (restart %d)\n",
                 LastExit.c_str(), static_cast<unsigned long long>(UptimeMs),
                 DelayMs, Restarts);
    sleepInterruptible(DelayMs);
    if (StopRequested)
      return 0;
    ++Generation;
  }
}
