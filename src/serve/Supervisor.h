//===- Supervisor.h - Supervised worker restarts for nv serve ---*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `nv serve --supervise`: a small fork/waitpid supervisor that keeps the
/// serve worker alive across crashes. The parent forks the worker (no
/// exec — the fork happens before any thread exists, so the child is a
/// clean single-threaded copy), waits for it, and classifies the exit:
///
///   - exit 0/1/2: deliberate (clean shutdown, verdict, user error) —
///     supervision ends with that code; restarting cannot help.
///   - exit 3/4 or a signal (kill -9, segfault, OOM): abnormal — the
///     worker restarts after a capped exponential backoff.
///
/// Crash durability is the journal's job, not the supervisor's: every
/// accepted request is journaled before it runs, so the restarted worker
/// replays accepted-but-unfinished work before serving (Serve.h). The
/// supervisor only guarantees there is always a worker to replay into.
///
/// Backoff: delay(N) = min(Base * 2^(N-1), Cap) for the Nth consecutive
/// abnormal exit; a worker that stays up HealthyResetMs resets the count,
/// so a one-off crash an hour apart always restarts at Base while a
/// crash loop quickly plateaus at Cap instead of spinning.
///
/// SIGINT/SIGTERM to the supervisor forward SIGTERM to the worker (whose
/// GracefulShutdown turns it into a drain) and end supervision with the
/// worker's exit code.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SUPERVISOR_H
#define NV_SERVE_SUPERVISOR_H

#include "support/Subprocess.h"

#include <cstdint>
#include <functional>

namespace nv {

struct SupervisorOptions {
  unsigned BackoffBaseMs = 100;   ///< Delay before the first restart.
  unsigned BackoffCapMs = 5000;   ///< Backoff plateau for crash loops.
  unsigned HealthyResetMs = 10000; ///< Uptime that resets the backoff.
  /// Abnormal exits tolerated before giving up (< 0 = unbounded). The
  /// count resets with the backoff, so this bounds crash *loops*, not
  /// lifetime restarts.
  int MaxRestarts = -1;
};

// The backoff schedule (nextRestartDelayMs) and waitpid classification
// (ChildExit) now live in support/Subprocess.h, shared with the worker
// fleet (support/Fleet.h); this header re-exports them via its include.

/// Runs \p Worker in supervised child processes until it exits
/// deliberately, the restart budget is exhausted (returns 3), or the
/// supervisor itself is told to stop. \p Worker receives the restart
/// generation (0 on first launch) and its return value is the child's
/// exit code. Must be called before the process creates threads.
int superviseLoop(const std::function<int(uint64_t Generation)> &Worker,
                  const SupervisorOptions &Opts);

} // namespace nv

#endif // NV_SERVE_SUPERVISOR_H
