//===- Serve.cpp - Long-lived verification service core -----------------------===//

#include "serve/Serve.h"

#include "analysis/FaultTolerance.h"
#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"
#include "support/Journal.h"
#include "support/Timer.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

using namespace nv;

//===----------------------------------------------------------------------===//
// ServeSession
//===----------------------------------------------------------------------===//

namespace nv {

/// One resident network. The context is declared before every cache that
/// holds values interned in it, so it is destroyed last.
struct ServeSession {
  std::string Name;
  std::string SourceHash; ///< fnv1a64 of the printed (canonical) program.
  Program Prog;
  std::unique_ptr<NvContext> Ctx;

  /// Cached Fig. 5 artifacts per analysis variant. The evaluators pin
  /// their globals and partial applications, so they stay valid across
  /// resetBetweenRuns() — this is what makes repeat ft queries warm.
  using FtKey = std::tuple<unsigned, bool, bool, std::string>;
  struct FtPrepared {
    Program Meta;
    std::unique_ptr<ProtocolEvaluator> MetaEval;
    std::unique_ptr<InterpProgramEvaluator> BaseEval;
  };
  std::map<FtKey, std::unique_ptr<FtPrepared>> Ft;

  /// Cached sim evaluators, [0] interpreted / [1] compiled.
  std::unique_ptr<ProtocolEvaluator> SimEval[2];

  /// Memoized responses for verdict-producing requests (code 0/1), keyed
  /// by the canonicalized request options. Sound because every engine is
  /// deterministic for a fixed program and options (the warm/cold
  /// bit-identity the tests pin down); error and budget-tripped responses
  /// are never stored, and a reload replaces the whole session, caches
  /// included. Guarded by M.
  std::map<std::string, Json> Results;

  /// An NvContext is single-threaded: requests to one session serialize
  /// here while requests to different sessions run in parallel.
  std::mutex M;
  std::atomic<uint64_t> Requests{0};
  std::chrono::steady_clock::time_point LastUsed; ///< Guarded by SessionsM.

  /// Approximate MTBDD heap of this session, refreshed after load and
  /// after every engine request while M is held. An atomic snapshot so
  /// the pressure check can sum all sessions without taking any session
  /// mutex (a busy session just contributes its last-known size).
  std::atomic<uint64_t> BytesApprox{0};
};

} // namespace nv

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

namespace {

std::optional<std::string> readFileText(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// `include` directives in a file-loaded program resolve next to the file
/// (mirroring the CLI); inline programs use only the built-in registry.
ParseOptions pathParseOptions(const std::string &Path) {
  std::string Dir = ".";
  size_t Slash = Path.rfind('/');
  if (Slash != std::string::npos)
    Dir = Path.substr(0, Slash);
  ParseOptions Opts;
  Opts.Resolver = [Dir](const std::string &Name) -> std::optional<std::string> {
    return readFileText(Dir + "/" + Name + ".nv");
  };
  return Opts;
}

Json makeResp(const std::string &Id) {
  Json R = Json::object();
  R.set("id", Id);
  return R;
}

Json errResp(const std::string &Id, int Code, const std::string &Msg) {
  Json R = makeResp(Id);
  R.set("ok", false);
  R.set("code", Code);
  R.set("error", Msg);
  return R;
}

Json outcomeResp(const std::string &Id, const RunOutcome &O) {
  Json R = makeResp(Id);
  R.set("ok", false);
  R.set("code", exitCodeForOutcome(O));
  R.set("outcome", O.str());
  R.set("outcome_status", runStatusName(O.Status));
  return R;
}

void applyBudget(const Json &Req, RunBudget &B, CancelToken *Cancel) {
  B.DeadlineMs = Req.getNumber("deadline_ms", 0);
  B.MaxSteps = static_cast<uint64_t>(Req.getNumber("max_steps", 0));
  B.MaxLiveNodes = static_cast<size_t>(Req.getNumber("node_budget", 0));
  B.MaxHeapBytes = static_cast<size_t>(Req.getNumber("heap_budget", 0));
  B.Cancel = Cancel;
}

/// Canonical memo key for a query: every request member except the
/// non-semantic ones ("id", "fresh"), sorted, so key order on the wire
/// does not split the cache.
std::string memoKey(const Json &Req) {
  std::vector<std::pair<std::string, std::string>> KVs;
  for (const auto &[K, V] : Req.members())
    if (K != "id" && K != "fresh")
      KVs.emplace_back(K, V.dump());
  std::sort(KVs.begin(), KVs.end());
  std::string Out;
  for (const auto &[K, V] : KVs) {
    Out += K;
    Out += '=';
    Out += V;
    Out += ';';
  }
  return Out;
}

/// Engine verbs are subject to admission control and backlog accounting;
/// control verbs (ping/stats/health/shutdown) are always admitted so a
/// saturated daemon stays observable and stoppable.
bool isEngineVerb(const std::string &V) {
  return V == "load" || V == "unload" || V == "sim" || V == "verify" ||
         V == "ft";
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Idx = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Idx - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pending
//===----------------------------------------------------------------------===//

Json ServeCore::Pending::wait() {
  std::unique_lock<std::mutex> L(M);
  Cv.wait(L, [&] { return Done; });
  return Response;
}

bool ServeCore::Pending::waitFor(unsigned Ms) {
  std::unique_lock<std::mutex> L(M);
  return Cv.wait_for(L, std::chrono::milliseconds(Ms), [&] { return Done; });
}

//===----------------------------------------------------------------------===//
// Construction / replay
//===----------------------------------------------------------------------===//

ServeCore::ServeCore(const ServeConfig &CfgIn)
    : Cfg(CfgIn), Start(std::chrono::steady_clock::now()), LatRing(1024, 0),
      Pool(Cfg.Threads) {
  if (Cfg.MaxSessions == 0)
    Cfg.MaxSessions = 1;
  // Default MaxInflight to the pool's *worker* count (a pool of N spawns
  // N-1 workers; submitted tasks only run there), so the bound is
  // actually reachable and the queue-depth term can engage.
  MaxInflightEff = Cfg.MaxInflight ? Cfg.MaxInflight
                   : Pool.numThreads() > 1
                       ? Pool.numThreads() - 1
                       : 1;
}

ServeCore::~ServeCore() = default;

ServeCore::CreateResult ServeCore::create(const ServeConfig &Cfg) {
  CreateResult Res;
  std::unique_ptr<RequestLog> Log;
  std::vector<RequestLog::PendingRequest> Replay;
  if (!Cfg.JournalPath.empty()) {
    RequestLog::OpenResult O = RequestLog::open(Cfg.JournalPath);
    if (!O.Log) {
      Res.Error = O.Error;
      Res.Hard = O.Hard;
      return Res;
    }
    Log = std::move(O.Log);
    Replay = Log->pending();
  }
  std::unique_ptr<ServeCore> Core(new ServeCore(Cfg));
  Core->Log = std::move(Log);
  if (Core->Log)
    Core->NextSeq.store(Core->Log->nextSeq());
  // Replay accepted-but-unfinished requests in acceptance order, before
  // any new request can run. Synchronous: a replayed `load` must finish
  // before the replayed queries that depend on it.
  Core->Replaying = true;
  for (const RequestLog::PendingRequest &P : Replay) {
    Core->run(P.Id, P.Body, /*Cancel=*/nullptr, /*RecordAccepted=*/false);
    ++Core->Replayed;
  }
  Core->Replaying = false;
  Res.Core = std::move(Core);
  return Res;
}

//===----------------------------------------------------------------------===//
// Request lifecycle
//===----------------------------------------------------------------------===//

bool ServeCore::wouldShed() const {
  return ReqActive.load(std::memory_order_relaxed) >= MaxInflightEff &&
         ReqQueued.load(std::memory_order_relaxed) >= Cfg.QueueDepth;
}

const char *ServeCore::healthState() const {
  if (shutdownRequested())
    return "draining";
  if (wouldShed())
    return "overloaded";
  return "ready";
}

unsigned ServeCore::retryAfterMsHint() const {
  // Expected wait = mean recent request latency scaled by the backlog a
  // retry would land behind, spread over the workers. Clamped so a cold
  // daemon never hints 0 and a pathological one never hints minutes.
  double MeanMs = 0;
  {
    std::lock_guard<std::mutex> L(LatM);
    if (LatCount) {
      for (size_t I = 0; I < LatCount; ++I)
        MeanMs += LatRing[I];
      MeanMs /= static_cast<double>(LatCount);
    }
  }
  double Backlog = static_cast<double>(
      ReqQueued.load(std::memory_order_relaxed) + 1);
  double Hint = MeanMs * Backlog / static_cast<double>(Pool.numThreads());
  if (Hint < 25)
    Hint = 25;
  if (Hint > 5000)
    Hint = 5000;
  return static_cast<unsigned>(Hint);
}

Json ServeCore::shedResponse(const std::string &Id) const {
  Json R = makeResp(Id);
  R.set("ok", false);
  R.set("code", 3);
  R.set("overloaded", true);
  R.set("retry_after_ms", retryAfterMsHint());
  RunOutcome O{RunStatus::Overloaded,
               "request shed by admission control", "serve-accept"};
  R.set("outcome", O.str());
  R.set("outcome_status", runStatusName(RunStatus::Overloaded));
  R.set("error", "server overloaded; retry after the hinted backoff");
  return R;
}

ServeCore::PendingPtr ServeCore::submit(const std::string &Line,
                                        std::shared_ptr<CancelToken> Cancel) {
  auto P = std::make_shared<Pending>();
  std::string Id = "r";
  Id += std::to_string(NextSeq.fetch_add(1));
  auto Finish = [P](Json R) {
    {
      std::lock_guard<std::mutex> L(P->M);
      P->Response = std::move(R);
      P->Done = true;
    }
    P->Cv.notify_all();
  };

  // Admission control: engine verbs are shed when MaxInflight requests
  // are executing AND QueueDepth more already wait. Shed before
  // journaling — a shed request was never accepted, so it must never
  // replay (its consumed id is a harmless gap: nextSeq() derives from
  // journaled ids only). The line is parsed a second time in dispatch();
  // classification must not trust a cheaper sniff than dispatch uses.
  Json Req;
  std::string ParseErr;
  bool Engine = Json::parse(Line, Req, ParseErr) && Req.isObject() &&
                isEngineVerb(Req.getString("verb"));
  if (Engine && wouldShed()) {
    Shed.fetch_add(1, std::memory_order_relaxed);
    Finish(shedResponse(Id));
    return P;
  }
  // Fault site "serve-accept": admission passed but acceptance fails
  // before it is durable — the client gets a fault outcome and nothing
  // is journaled, exactly like a shed.
  try {
    FaultInject::hit(GovSite::ServeAccept);
  } catch (const EngineError &E) {
    Finish(outcomeResp(Id, E.outcome()));
    return P;
  }
  // Journal acceptance before queueing: a crash while the request waits
  // for a worker still replays it. Only engine verbs are journaled — the
  // journal replays accepted *work*, and a health probe is not work.
  if (Log && Engine)
    Log->recordAccepted(Id, Line);
  // Control verbs (ping/health/stats/shutdown and malformed lines) run
  // inline on the caller's thread: "always admitted" would be hollow if
  // a health probe still queued behind saturated workers. They are all
  // cheap and never take a session mutex for long.
  if (!Engine) {
    Finish(run(Id, Line, Cancel.get(), /*RecordAccepted=*/false));
    return P;
  }
  ReqQueued.fetch_add(1, std::memory_order_relaxed);
  Pool.submit([this, P, Id, Line, Cancel, Finish] {
    ReqQueued.fetch_sub(1, std::memory_order_relaxed);
    ReqActive.fetch_add(1, std::memory_order_relaxed);
    Json R = run(Id, Line, Cancel.get(), /*RecordAccepted=*/false);
    ReqActive.fetch_sub(1, std::memory_order_relaxed);
    Finish(std::move(R));
  });
  return P;
}

Json ServeCore::executeLine(const std::string &Line, CancelToken *Cancel) {
  std::string Id = "r";
  Id += std::to_string(NextSeq.fetch_add(1));
  return run(Id, Line, Cancel, /*RecordAccepted=*/true);
}

Json ServeCore::run(const std::string &Id, const std::string &Line,
                    CancelToken *Cancel, bool RecordAccepted) {
  Stopwatch W;
  // Only engine verbs touch the journal (they are the replayable work);
  // during replay everything journaled is retired with a done record,
  // which also drains control verbs journaled by older daemons.
  Json ReqSniff;
  std::string SniffErr;
  bool JournalIt =
      Log && (Replaying ||
              (Json::parse(Line, ReqSniff, SniffErr) && ReqSniff.isObject() &&
               isEngineVerb(ReqSniff.getString("verb"))));
  if (RecordAccepted && JournalIt)
    Log->recordAccepted(Id, Line);
  Accepted.fetch_add(1, std::memory_order_relaxed);
  Active.fetch_add(1, std::memory_order_relaxed);
  Json Resp;
  try {
    // Fault sites "serve-enqueue" (the worker picked the request up) and
    // "serve-respond" (response finalization, pre-journal-done). Both
    // fire inside the accounting envelope, so a tripped stage still
    // counts, journals done, and answers the client with a fault outcome.
    FaultInject::hit(GovSite::ServeEnqueue);
    Resp = dispatch(Id, Line, Cancel);
    FaultInject::hit(GovSite::ServeRespond);
  } catch (const EngineError &E) {
    // Verb executors catch at their boundary; this is the backstop for a
    // trip outside any executor (e.g. evaluator construction).
    Resp = outcomeResp(Id, E.outcome());
  } catch (const std::exception &E) {
    Resp = errResp(Id, 4, std::string("internal error: ") + E.what());
  }
  int Code = static_cast<int>(Resp.getNumber("code", 4));
  if (Code < 0 || Code > 4)
    Code = 4;
  ByCode[static_cast<size_t>(Code)].fetch_add(1, std::memory_order_relaxed);
  Active.fetch_sub(1, std::memory_order_relaxed);
  Completed.fetch_add(1, std::memory_order_relaxed);
  noteLatency(W.elapsedMs());
  if (JournalIt) {
    std::string Outc = Resp.getString("outcome");
    if (Outc.empty())
      Outc = Code == 0   ? "ok"
             : Code == 1 ? "falsified"
             : Code == 2 ? "user-error"
             : Code == 3 ? "resource"
                         : "internal";
    for (char &C : Outc) // journal field values are single-line
      if (C == '\n' || C == '\r')
        C = ' ';
    Log->recordDone(Id, Code, Outc);
  }
  return Resp;
}

std::shared_ptr<ServeSession> ServeCore::findSession(const std::string &Name) {
  std::lock_guard<std::mutex> L(SessionsM);
  auto It = Sessions.find(Name);
  if (It == Sessions.end())
    return nullptr;
  It->second->LastUsed = std::chrono::steady_clock::now();
  return It->second;
}

Json ServeCore::dispatch(const std::string &Id, const std::string &Line,
                         CancelToken *Cancel) {
  Json Req;
  std::string Err;
  if (!Json::parse(Line, Req, Err))
    return errResp(Id, 2, "bad request JSON: " + Err);
  if (!Req.isObject())
    return errResp(Id, 2, "request must be a JSON object");
  std::string Verb = Req.getString("verb");

  if (Verb == "ping") {
    Json R = makeResp(Id);
    R.set("ok", true);
    R.set("code", 0);
    R.set("verb", "ping");
    return R;
  }

  if (Verb == "shutdown") {
    Json R = makeResp(Id);
    R.set("ok", true);
    R.set("code", 0);
    // A shutdown replayed from the journal is drained (recorded done) but
    // must not stop the *fresh* daemon it is replaying into.
    if (!Replaying)
      Shutdown.store(true, std::memory_order_release);
    else
      R.set("replayed_noop", true);
    return R;
  }

  if (Verb == "health") {
    // Always admitted and always code 0: health reports the overload
    // state, it does not participate in it.
    Json R = makeResp(Id);
    R.set("ok", true);
    R.set("code", 0);
    R.set("state", healthState());
    R.set("engine_active", ReqActive.load(std::memory_order_relaxed));
    R.set("engine_queued", ReqQueued.load(std::memory_order_relaxed));
    R.set("max_inflight", static_cast<uint64_t>(MaxInflightEff));
    R.set("queue_depth", static_cast<uint64_t>(Cfg.QueueDepth));
    R.set("shed", Shed.load(std::memory_order_relaxed));
    R.set("generation", Cfg.Generation);
    R.set("last_exit", Cfg.LastExit.empty() ? "none" : Cfg.LastExit);
    return R;
  }

  if (Verb == "stats") {
    Json R = makeResp(Id);
    Json S = statsJson();
    for (const auto &[Key, V] : S.members())
      R.set(Key, V);
    return R;
  }

  if (Verb == "load")
    return doLoad(Req, Id);

  if (Verb == "unload") {
    std::string Name = Req.getString("session");
    std::lock_guard<std::mutex> L(SessionsM);
    auto It = Sessions.find(Name);
    if (It == Sessions.end())
      return errResp(Id, 2, "unknown session \"" + Name + "\"");
    Sessions.erase(It);
    Json R = makeResp(Id);
    R.set("ok", true);
    R.set("code", 0);
    R.set("session", Name);
    return R;
  }

  if (Verb == "sim" || Verb == "verify" || Verb == "ft") {
    std::string Name = Req.getString("session");
    std::shared_ptr<ServeSession> S = findSession(Name);
    if (!S)
      return errResp(Id, 2, "unknown session \"" + Name + "\"");
    std::lock_guard<std::mutex> L(S->M);
    S->Requests.fetch_add(1, std::memory_order_relaxed);

    // Result memo: a repeat of an identical verdict-producing query is
    // answered from the session's response cache ("fresh": true forces a
    // recompute, which also refreshes the cached copy).
    std::string Key = memoKey(Req);
    if (!Req.getBool("fresh")) {
      auto It = S->Results.find(Key);
      if (It != S->Results.end()) {
        ResultHits.fetch_add(1, std::memory_order_relaxed);
        Json R = It->second;
        R.set("id", Id);
        R.set("cached", true);
        return R;
      }
      ResultMisses.fetch_add(1, std::memory_order_relaxed);
    }

    Json R;
    if (Verb == "sim")
      R = doSim(*S, Req, Id, Cancel);
    else if (Verb == "verify")
      R = doVerify(*S, Req, Id, Cancel);
    else
      R = doFt(*S, Req, Id, Cancel);
    // Only verdicts memoize: errors and budget/cancellation trips must
    // re-run (codes 2-4 describe the request or the run, not the network).
    if (R.getNumber("code", 4) <= 1) {
      S->Results[Key] = R;
      capMemo(*S);
    }
    S->BytesApprox.store(S->Ctx->Mgr.memoryBytes(),
                         std::memory_order_relaxed);
    return R;
  }

  return errResp(Id, 2, Verb.empty() ? "request has no \"verb\""
                                     : "unknown verb \"" + Verb + "\"");
}

//===----------------------------------------------------------------------===//
// Degradation under pressure
//===----------------------------------------------------------------------===//

void ServeCore::capMemo(ServeSession &S) {
  if (!Cfg.MemoEntryCap)
    return;
  size_t Dropped = 0;
  // std::map iterates in key order, so this erases by key, not recency:
  // the cap is a size backstop against unbounded distinct-query streams,
  // not an LRU — identical repeats (the case the memo exists for) keep
  // hitting whichever entries remain.
  while (S.Results.size() > Cfg.MemoEntryCap) {
    S.Results.erase(S.Results.begin());
    ++Dropped;
  }
  if (Dropped)
    MemoEvicted.fetch_add(Dropped, std::memory_order_relaxed);
}

uint64_t ServeCore::residentBytesApprox() const {
  std::lock_guard<std::mutex> L(SessionsM);
  uint64_t Total = 0;
  for (const auto &[Name, S] : Sessions)
    Total += S->BytesApprox.load(std::memory_order_relaxed);
  return Total;
}

bool ServeCore::relievePressure(const std::string &Exempt) {
  if (!Cfg.HeapBudgetBytes ||
      residentBytesApprox() <= Cfg.HeapBudgetBytes)
    return true;

  // Stage 1: drop the result memos of every idle session (try_lock —
  // a busy session's caches are in use). Memos are small next to MTBDD
  // arenas, but they are the cheapest thing to give back and dropping
  // them never loses accepted work, only recomputes it.
  {
    std::lock_guard<std::mutex> L(SessionsM);
    for (auto &[Name, S] : Sessions) {
      if (Name == Exempt)
        continue;
      if (S->M.try_lock()) {
        MemoEvicted.fetch_add(S->Results.size(), std::memory_order_relaxed);
        S->Results.clear();
        S->M.unlock();
      }
    }
  }

  // Stage 2: evict idle sessions coldest-first until under budget. A
  // busy session is never evicted (its arena cannot be reclaimed while
  // a request runs inside it), and neither is the exempt session being
  // (re)loaded. In-flight holders of an evicted session's shared_ptr
  // finish normally; only the name becomes unresolvable.
  while (residentBytesApprox() > Cfg.HeapBudgetBytes) {
    std::lock_guard<std::mutex> L(SessionsM);
    auto Coldest = Sessions.end();
    for (auto It = Sessions.begin(); It != Sessions.end(); ++It) {
      if (It->first == Exempt)
        continue;
      if (Coldest != Sessions.end() &&
          It->second->LastUsed >= Coldest->second->LastUsed)
        continue;
      if (It->second->M.try_lock()) {
        It->second->M.unlock(); // idle right now; SessionsM blocks lookups
        Coldest = It;
      }
    }
    if (Coldest == Sessions.end())
      return false; // everything left is busy or exempt
    Sessions.erase(Coldest);
    PressureEvicted.fetch_add(1, std::memory_order_relaxed);
    SessionsEvicted.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// load / unload
//===----------------------------------------------------------------------===//

Json ServeCore::doLoad(const Json &Req, const std::string &Id) {
  std::string Source = Req.getString("program");
  std::string Path = Req.getString("path");
  if (Source.empty() && Path.empty())
    return errResp(Id, 2, "load needs \"program\" (NV source) or \"path\"");

  // Degrade before rejecting: above the heap watermark, give back memos
  // and cold sessions first; only when nothing is evictable (every other
  // session is mid-request) does the load itself bounce. The rejection
  // is journaled like any accepted request — the outcome is overloaded,
  // which clients treat as transient.
  if (!relievePressure(Req.getString("session"))) {
    LoadsRejected.fetch_add(1, std::memory_order_relaxed);
    Json R = shedResponse(Id);
    R.set("heap_pressure", true);
    return R;
  }
  ParseOptions PO;
  if (Source.empty()) {
    auto Text = readFileText(Path);
    if (!Text)
      return errResp(Id, 2, "cannot read " + Path);
    Source = std::move(*Text);
    PO = pathParseOptions(Path);
  }
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags, PO);
  if (!P)
    return errResp(Id, 2, "parse error: " + Diags.str());
  if (!typeCheck(*P, Diags))
    return errResp(Id, 2, "type error: " + Diags.str());

  auto S = std::make_shared<ServeSession>();
  std::string Name = Req.getString("session");
  S->Name = Name.empty() ? "s" + std::to_string(NextSession.fetch_add(1))
                         : Name;
  S->SourceHash = fnv1a64Hex(printProgram(*P));
  S->Prog = std::move(*P);
  S->Ctx = std::make_unique<NvContext>(S->Prog.numNodes());
  S->LastUsed = std::chrono::steady_clock::now();
  S->BytesApprox.store(S->Ctx->Mgr.memoryBytes(), std::memory_order_relaxed);

  size_t Evicted = 0;
  {
    std::lock_guard<std::mutex> L(SessionsM);
    Sessions[S->Name] = S; // Reloading an existing name replaces it.
    // LRU eviction, never of the session just loaded. In-flight requests
    // on an evicted session finish on their shared_ptr; only the name
    // becomes unresolvable.
    while (Sessions.size() > Cfg.MaxSessions) {
      auto Oldest = Sessions.end();
      for (auto It = Sessions.begin(); It != Sessions.end(); ++It) {
        if (It->second == S)
          continue;
        if (Oldest == Sessions.end() ||
            It->second->LastUsed < Oldest->second->LastUsed)
          Oldest = It;
      }
      if (Oldest == Sessions.end())
        break;
      Sessions.erase(Oldest);
      ++Evicted;
    }
  }
  SessionsLoaded.fetch_add(1, std::memory_order_relaxed);
  SessionsEvicted.fetch_add(Evicted, std::memory_order_relaxed);

  Json R = makeResp(Id);
  R.set("ok", true);
  R.set("code", 0);
  R.set("session", S->Name);
  R.set("nodes", S->Prog.numNodes());
  R.set("edges", static_cast<uint64_t>(S->Prog.links().size()));
  R.set("program_hash", S->SourceHash);
  if (Evicted)
    R.set("evicted", static_cast<uint64_t>(Evicted));
  return R;
}

//===----------------------------------------------------------------------===//
// sim
//===----------------------------------------------------------------------===//

Json ServeCore::doSim(ServeSession &S, const Json &Req, const std::string &Id,
                      CancelToken *Cancel) {
  bool Native = Req.getBool("native", false);
  try {
    S.Ctx->resetBetweenRuns();
    std::unique_ptr<ProtocolEvaluator> &Eval = S.SimEval[Native ? 1 : 0];
    if (!Eval) {
      if (Native)
        Eval = std::make_unique<CompiledProgramEvaluator>(*S.Ctx, S.Prog);
      else
        Eval = std::make_unique<InterpProgramEvaluator>(*S.Ctx, S.Prog);
    }
    SimOptions SO;
    applyBudget(Req, SO.Budget, Cancel); // simulate() governs itself
    Stopwatch W;
    SimResult R = simulate(S.Prog, *Eval, SO);
    if (!R.Outcome.ok())
      return outcomeResp(Id, R.Outcome);
    Json Resp = makeResp(Id);
    Resp.set("converged", R.Converged);
    Resp.set("steps", R.Stats.Pops);
    Resp.set("simulate_ms", W.elapsedMs());
    Resp.set("require_holds", Eval->requiresHold());
    int Code = 0;
    if (!R.Converged) {
      Code = 1;
    } else if (S.Prog.assertDecl()) {
      std::vector<uint32_t> Failed = checkAsserts(*Eval, R);
      Json FailedJ = Json::array();
      for (uint32_t U : Failed)
        FailedJ.push(U);
      Resp.set("assert_failed", std::move(FailedJ));
      if (!Failed.empty())
        Code = 1;
    }
    if (Req.getBool("labels", false) && R.Converged) {
      Json Labels = Json::array();
      for (uint32_t U = 0; U < S.Prog.numNodes(); ++U)
        Labels.push(R.Labels[U] ? S.Ctx->printValue(R.Labels[U]) : "");
      Resp.set("labels", std::move(Labels));
    }
    Resp.set("ok", Code == 0);
    Resp.set("code", Code);
    return Resp;
  } catch (const EngineError &E) {
    return outcomeResp(Id, E.outcome());
  }
}

//===----------------------------------------------------------------------===//
// verify
//===----------------------------------------------------------------------===//

Json ServeCore::doVerify(ServeSession &S, const Json &Req,
                         const std::string &Id, CancelToken *Cancel) {
  VerifyOptions VO;
  VO.TimeoutMs = static_cast<unsigned>(Req.getNumber("timeout_ms", 0));
  applyBudget(Req, VO.Budget, Cancel); // verifyProgram governs itself
  DiagnosticEngine Diags;
  VerifyResult R = verifyProgram(S.Prog, VO, Diags);
  Json Resp = makeResp(Id);
  Resp.set("encode_ms", R.EncodeMs);
  Resp.set("solve_ms", R.SolveMs);
  Resp.set("assertions", R.NumAssertions);
  int Code;
  const char *Status;
  switch (R.Status) {
  case VerifyStatus::Verified:
    Status = "verified";
    Code = 0;
    break;
  case VerifyStatus::Falsified:
    Status = "falsified";
    Code = 1;
    Resp.set("counterexample", R.Counterexample);
    break;
  case VerifyStatus::Unknown:
    Status = "unknown";
    Code = 2;
    break;
  case VerifyStatus::ResourceExhausted:
    Status = "resource-exhausted";
    Code = 3;
    Resp.set("outcome", R.Outcome.str());
    break;
  case VerifyStatus::EncodingError:
  default:
    Status = "encoding-error";
    Code = exitCodeForOutcome(R.Outcome);
    Resp.set("outcome", R.Outcome.str());
    Resp.set("error", Diags.str());
    break;
  }
  Resp.set("status", Status);
  Resp.set("ok", Code == 0);
  Resp.set("code", Code);
  return Resp;
}

//===----------------------------------------------------------------------===//
// ft — the warm path
//===----------------------------------------------------------------------===//

Json ServeCore::doFt(ServeSession &S, const Json &Req, const std::string &Id,
                     CancelToken *Cancel) {
  FtOptions Opts;
  Opts.LinkFailures = static_cast<unsigned>(Req.getNumber("links", 1));
  Opts.NodeFailure = Req.getBool("node", false);
  Opts.DropValueSource = Req.getString("drop_value", "None");
  Opts.Threads = 1; // parallelism comes from concurrent requests
  applyBudget(Req, Opts.Budget, Cancel);
  bool Native = Req.getBool("native", false);
  if (Opts.LinkFailures < 1)
    return errResp(Id, 2, "\"links\" must be >= 1");

  // Mirrors runFaultTolerance: one governor spans transform, simulation
  // and check; the simulator gets an unlimited budget of its own so the
  // run is governed exactly once.
  Governor::Scope Guard(Opts.Budget);
  try {
    // Collect the PREVIOUS request's garbage down to the pinned baseline
    // (cached evaluators pin what they need, so they survive this).
    S.Ctx->resetBetweenRuns();
    uint64_t Hits0 = S.Ctx->Mgr.cacheHits();
    uint64_t Misses0 = S.Ctx->Mgr.cacheMisses();

    ServeSession::FtKey Key{Opts.LinkFailures, Opts.NodeFailure, Native,
                            Opts.DropValueSource};
    auto It = S.Ft.find(Key);
    bool Warm = It != S.Ft.end();
    double TransformMs = 0;
    if (!Warm) {
      DiagnosticEngine Diags;
      Stopwatch W;
      std::optional<Program> Meta =
          makeFaultTolerantProgram(S.Prog, Opts, Diags);
      TransformMs = W.elapsedMs();
      if (!Meta)
        return errResp(Id, 2, "fault-tolerance transform failed: " +
                                  Diags.str());
      auto Prep = std::make_unique<ServeSession::FtPrepared>();
      Prep->Meta = std::move(*Meta);
      if (Native)
        Prep->MetaEval =
            std::make_unique<CompiledProgramEvaluator>(*S.Ctx, Prep->Meta);
      else
        Prep->MetaEval =
            std::make_unique<InterpProgramEvaluator>(*S.Ctx, Prep->Meta);
      Prep->BaseEval =
          std::make_unique<InterpProgramEvaluator>(*S.Ctx, S.Prog);
      It = S.Ft.emplace(Key, std::move(Prep)).first;
    }
    (Warm ? FtWarmHits : FtWarmMisses).fetch_add(1, std::memory_order_relaxed);
    ServeSession::FtPrepared &Prep = *It->second;

    SimOptions SO;
    SO.Budget = RunBudget{}; // governed by this request's outer scope
    Stopwatch W;
    SimResult R = simulate(Prep.Meta, *Prep.MetaEval, SO);
    double SimulateMs = W.elapsedMs();
    if (!R.Outcome.ok())
      return outcomeResp(Id, R.Outcome);

    Json Resp = makeResp(Id);
    Resp.set("warm", Warm);
    Resp.set("converged", R.Converged);
    Resp.set("transform_ms", TransformMs);
    Resp.set("simulate_ms", SimulateMs);
    if (!R.Converged) {
      Resp.set("ok", false);
      Resp.set("code", 1);
      Resp.set("error", "meta-simulation did not converge");
      return Resp;
    }

    W.restart();
    FtCheckResult C =
        checkFaultTolerance(*S.Ctx, S.Prog, *Prep.BaseEval, R, Opts, nullptr);
    Resp.set("check_ms", W.elapsedMs());
    if (!C.Outcome.ok())
      return outcomeResp(Id, C.Outcome);

    // The violations hash is byte-identical to the CLI's naive-baseline
    // fingerprint, so warm/cold and serve/CLI results diff directly.
    std::string VioBlob;
    for (const FtViolation &V : C.Violations)
      VioBlob += V.Scenario.str() + "@" + std::to_string(V.Node) + "=" +
                 V.routeStr() + "\n";
    Resp.set("scenarios", C.ScenariosChecked);
    Resp.set("skipped", C.ScenariosSkipped);
    Resp.set("violations", static_cast<uint64_t>(C.Violations.size()));
    Resp.set("violations_hash", fnv1a64Hex(VioBlob));
    Resp.set("cache_hits", S.Ctx->Mgr.cacheHits() - Hits0);
    Resp.set("cache_misses", S.Ctx->Mgr.cacheMisses() - Misses0);
    Json Sample = Json::array();
    for (size_t I = 0; I < std::min<size_t>(5, C.Violations.size()); ++I) {
      const FtViolation &V = C.Violations[I];
      Json VJ = Json::object();
      VJ.set("scenario", V.Scenario.str());
      VJ.set("node", V.Node);
      VJ.set("route", V.routeStr());
      Sample.push(std::move(VJ));
    }
    if (!C.Violations.empty())
      Resp.set("first_violations", std::move(Sample));
    int Code = C.holds() ? 0 : 1;
    Resp.set("ok", Code == 0);
    Resp.set("code", Code);
    return Resp;
  } catch (const EngineError &E) {
    return outcomeResp(Id, E.outcome());
  }
}

//===----------------------------------------------------------------------===//
// stats
//===----------------------------------------------------------------------===//

void ServeCore::noteLatency(double Ms) {
  std::lock_guard<std::mutex> L(LatM);
  LatRing[LatPos] = Ms;
  LatPos = (LatPos + 1) % LatRing.size();
  if (LatCount < LatRing.size())
    ++LatCount;
}

Json ServeCore::statsJson() const {
  Json R = Json::object();
  R.set("ok", true);
  R.set("code", 0);
  R.set("uptime_ms", std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Start)
                         .count());

  Json Reqs = Json::object();
  Reqs.set("accepted", Accepted.load(std::memory_order_relaxed));
  Reqs.set("completed", Completed.load(std::memory_order_relaxed));
  Reqs.set("active", Active.load(std::memory_order_relaxed));
  Reqs.set("replayed", static_cast<uint64_t>(Replayed));
  Json Codes = Json::array();
  for (const auto &C : ByCode)
    Codes.push(C.load(std::memory_order_relaxed));
  Reqs.set("by_code", std::move(Codes));
  R.set("requests", std::move(Reqs));

  R.set("health", healthState());
  R.set("generation", Cfg.Generation);
  R.set("last_exit", Cfg.LastExit.empty() ? "none" : Cfg.LastExit);

  Json Adm = Json::object();
  Adm.set("max_inflight", static_cast<uint64_t>(MaxInflightEff));
  Adm.set("queue_depth", static_cast<uint64_t>(Cfg.QueueDepth));
  Adm.set("engine_active", ReqActive.load(std::memory_order_relaxed));
  Adm.set("engine_queued", ReqQueued.load(std::memory_order_relaxed));
  Adm.set("shed", Shed.load(std::memory_order_relaxed));
  R.set("admission", std::move(Adm));

  Json Press = Json::object();
  Press.set("heap_budget_bytes", static_cast<uint64_t>(Cfg.HeapBudgetBytes));
  Press.set("resident_bytes", residentBytesApprox());
  Press.set("memo_evicted", MemoEvicted.load(std::memory_order_relaxed));
  Press.set("sessions_evicted",
            PressureEvicted.load(std::memory_order_relaxed));
  Press.set("loads_rejected", LoadsRejected.load(std::memory_order_relaxed));
  R.set("pressure", std::move(Press));

  {
    std::vector<double> Sorted;
    {
      std::lock_guard<std::mutex> L(LatM);
      Sorted.assign(LatRing.begin(),
                    LatRing.begin() + static_cast<long>(LatCount));
    }
    std::sort(Sorted.begin(), Sorted.end());
    Json Lat = Json::object();
    Lat.set("count", static_cast<uint64_t>(Sorted.size()));
    Lat.set("p50_ms", percentile(Sorted, 0.50));
    Lat.set("p90_ms", percentile(Sorted, 0.90));
    Lat.set("p99_ms", percentile(Sorted, 0.99));
    Lat.set("max_ms", Sorted.empty() ? 0.0 : Sorted.back());
    R.set("latency", std::move(Lat));
  }

  {
    ThreadPool::Stats PS = Pool.stats();
    Json PoolJ = Json::object();
    PoolJ.set("threads", Pool.numThreads());
    PoolJ.set("tasks_run", PS.TasksRun);
    PoolJ.set("async_submitted", PS.AsyncSubmitted);
    PoolJ.set("async_completed", PS.AsyncCompleted);
    PoolJ.set("async_queued", static_cast<uint64_t>(PS.AsyncQueued));
    PoolJ.set("async_active", static_cast<uint64_t>(PS.AsyncActive));
    PoolJ.set("parallel_for_calls", PS.ParallelForCalls);
    PoolJ.set("worker_idle_ms", PS.WorkerIdleMs);
    R.set("pool", std::move(PoolJ));
  }

  Json FtCache = Json::object();
  FtCache.set("hits", FtWarmHits.load(std::memory_order_relaxed));
  FtCache.set("misses", FtWarmMisses.load(std::memory_order_relaxed));
  R.set("ft_cache", std::move(FtCache));

  Json ResCache = Json::object();
  ResCache.set("hits", ResultHits.load(std::memory_order_relaxed));
  ResCache.set("misses", ResultMisses.load(std::memory_order_relaxed));
  R.set("result_cache", std::move(ResCache));

  Json SessJ = Json::array();
  {
    std::lock_guard<std::mutex> L(SessionsM);
    for (const auto &[Name, S] : Sessions) {
      Json E = Json::object();
      E.set("session", Name);
      E.set("nodes", S->Prog.numNodes());
      E.set("requests", S->Requests.load(std::memory_order_relaxed));
      // Manager counters are only safe to read with the session idle; a
      // busy session reports what its atomics allow and moves on.
      if (S->M.try_lock()) {
        E.set("ft_variants", static_cast<uint64_t>(S->Ft.size()));
        E.set("mtbdd_nodes", static_cast<uint64_t>(S->Ctx->Mgr.numNodes()));
        E.set("mtbdd_bytes",
              static_cast<uint64_t>(S->Ctx->Mgr.memoryBytes()));
        E.set("cache_hits", S->Ctx->Mgr.cacheHits());
        E.set("cache_misses", S->Ctx->Mgr.cacheMisses());
        const BddManager::GcStats &G = S->Ctx->Mgr.gcStats();
        E.set("gc_collections", G.Collections);
        E.set("gc_reclaimed", G.NodesReclaimed);
        E.set("gc_peak_nodes", static_cast<uint64_t>(G.PeakNodes));
        S->M.unlock();
      } else {
        E.set("busy", true);
      }
      SessJ.push(std::move(E));
    }
  }
  R.set("sessions", std::move(SessJ));
  R.set("sessions_loaded", SessionsLoaded.load(std::memory_order_relaxed));
  R.set("sessions_evicted", SessionsEvicted.load(std::memory_order_relaxed));

  if (Log) {
    Json J = Json::object();
    J.set("path", Log->path());
    J.set("accepted_at_open", static_cast<uint64_t>(Log->acceptedCount()));
    J.set("done_at_open", static_cast<uint64_t>(Log->doneCount()));
    J.set("torn_tail_dropped", Log->tornTailDropped());
    R.set("journal", std::move(J));
  }
  return R;
}
