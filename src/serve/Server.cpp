//===- Server.cpp - Unix-socket front end for ServeCore -----------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace nv;

namespace {

bool bindUnixSocket(const std::string &Path, int &OutFd, std::string &Error) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "socket path too long (max " +
            std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes): " +
            Path;
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (errno == EADDRINUSE) {
      // A leftover socket file from a crashed daemon, or a live one?
      // Probe with a connect: refused/unreachable means stale, so unlink
      // and rebind; an accepted connect means the path is taken.
      int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool Live = Probe >= 0 && ::connect(Probe,
                                          reinterpret_cast<sockaddr *>(&Addr),
                                          sizeof(Addr)) == 0;
      if (Probe >= 0)
        ::close(Probe);
      if (Live) {
        ::close(Fd);
        Error = Path + ": another daemon is already serving on this socket";
        return false;
      }
      ::unlink(Path.c_str());
      if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0) {
        OutFd = Fd;
        return true;
      }
    }
    Error = Path + ": bind: " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  OutFd = Fd;
  return true;
}

/// True once the peer has closed its end (a zero-byte recv with the
/// socket still readable). Pipelined request bytes read as "alive".
bool peerHungUp(int Fd) {
  char B;
  ssize_t N = ::recv(Fd, &B, 1, MSG_PEEK | MSG_DONTWAIT);
  return N == 0;
}

bool sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && (errno == EINTR))
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Server::CreateResult Server::create(const Options &Opts) {
  CreateResult Res;
  int Fd = -1;
  if (!bindUnixSocket(Opts.SocketPath, Fd, Res.Error)) {
    Res.ExitCode = 2;
    return Res;
  }
  if (::listen(Fd, 64) != 0) {
    Res.Error = Opts.SocketPath + ": listen: " + std::strerror(errno);
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return Res;
  }
  ServeCore::CreateResult CoreRes = ServeCore::create(Opts.Core);
  if (!CoreRes.Core) {
    Res.Error = CoreRes.Error;
    Res.ExitCode = CoreRes.Hard ? 2 : 2;
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return Res;
  }
  std::unique_ptr<Server> Srv(new Server());
  Srv->Path = Opts.SocketPath;
  Srv->ListenFd = Fd;
  Srv->MaxLineBytes = Opts.MaxLineBytes;
  Srv->IdleTimeoutMs = Opts.IdleTimeoutMs;
  Srv->Core = std::move(CoreRes.Core);
  Res.Srv = std::move(Srv);
  return Res;
}

Server::~Server() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Path.c_str());
  }
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
}

int Server::run(CancelToken *Cancel) {
  bool Canceled = false;
  for (;;) {
    if (Core->shutdownRequested())
      break;
    if (Cancel && Cancel->isCanceled()) {
      Canceled = true;
      break;
    }
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, /*timeout ms=*/200);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> L(ConnM);
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { connectionLoop(Fd); });
  }

  // Stop accepting, nudge live connections: a half-close makes their
  // blocking read return so each thread can finish its in-flight request
  // and exit.
  ::close(ListenFd);
  ::unlink(Path.c_str());
  ListenFd = -1;
  {
    std::lock_guard<std::mutex> L(ConnM);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
  ConnThreads.clear();
  return Canceled ? 3 : 0;
}

void Server::connectionLoop(int Fd) {
  // Partial-write safety: a client that stops draining its socket makes
  // send block once the buffers fill; the timeout turns that into a
  // failed send (sendAll treats EAGAIN as fatal) and the connection
  // closes instead of pinning this thread forever.
  struct timeval SndTo{};
  SndTo.tv_sec = 30;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SndTo, sizeof(SndTo));

  std::string Buf;
  char Chunk[4096];
  bool Open = true;
  auto LastByte = std::chrono::steady_clock::now();
  while (Open) {
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      // Processed lines are erased below, so an unterminated Buf is one
      // partial request line; cap it before it can grow unboundedly.
      if (MaxLineBytes && Buf.size() > MaxLineBytes) {
        Json E = Json::object();
        E.set("ok", false);
        E.set("code", 2);
        E.set("error", "request line exceeds " +
                           std::to_string(MaxLineBytes) + " bytes");
        sendAll(Fd, E.dump() + "\n");
        Open = false;
        break;
      }
      pollfd P{Fd, POLLIN, 0};
      // Slices never longer than the idle timeout, so short timeouts
      // (tests, aggressive configs) are detected promptly.
      int Slice = IdleTimeoutMs && IdleTimeoutMs < 1000
                      ? static_cast<int>(IdleTimeoutMs)
                      : 1000;
      int PN = ::poll(&P, 1, Slice);
      if (PN < 0) {
        if (errno == EINTR)
          continue;
        Open = false;
        break;
      }
      if (PN == 0) {
        if (IdleTimeoutMs &&
            std::chrono::steady_clock::now() - LastByte >=
                std::chrono::milliseconds(IdleTimeoutMs)) {
          Json E = Json::object();
          E.set("ok", false);
          E.set("code", 3);
          E.set("error", "connection idle for more than " +
                             std::to_string(IdleTimeoutMs) + " ms");
          E.set("idle_timeout", true);
          sendAll(Fd, E.dump() + "\n");
          Open = false;
          break;
        }
        continue;
      }
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0) {
        if (N < 0 && errno == EINTR)
          continue;
        Open = false;
        break;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
      LastByte = std::chrono::steady_clock::now();
    }
    if (!Open)
      break;
    std::string Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;

    auto Cancel = std::make_shared<CancelToken>();
    ServeCore::PendingPtr Pending = Core->submit(Line, Cancel);
    bool ClientGone = false;
    while (!Pending->waitFor(50)) {
      // The client vanishing is a cancellation request: trip the token,
      // then keep waiting — the request must still complete so session
      // state and the journal stay consistent.
      if (!ClientGone && Buf.empty() && peerHungUp(Fd)) {
        ClientGone = true;
        Cancel->requestCancel();
      }
    }
    Json Resp = Pending->wait();
    if (!ClientGone) {
      if (!sendAll(Fd, Resp.dump() + "\n"))
        Open = false;
    } else {
      Open = false;
    }
  }
  ::close(Fd);
  std::lock_guard<std::mutex> L(ConnM);
  ConnFds.erase(std::remove(ConnFds.begin(), ConnFds.end(), Fd),
                ConnFds.end());
}
