//===- Server.h - Unix-socket front end for ServeCore -----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport for `nv serve`: a Unix-domain stream socket speaking
/// newline-delimited JSON. One thread per connection reads request lines
/// and submits them to the ServeCore; while a request runs, the
/// connection thread polls its socket for hangup and trips the request's
/// CancelToken when the client goes away — the request still completes
/// (with a Canceled outcome, keeping session state and the journal
/// consistent), but no response is written.
///
/// Connection hygiene: each connection carries an fd, a thread, and a
/// growing line buffer, so misbehaving clients are bounded. A request
/// line longer than MaxLineBytes gets a one-line JSON error (code 2) and
/// the connection closes; a connection idle longer than IdleTimeoutMs
/// gets a one-line JSON error (code 3) and closes; and writes carry a
/// send timeout so a client that stops draining its socket cannot pin a
/// connection thread in a blocked send.
///
/// A local socket (not TCP) on purpose: the service trusts its requests
/// exactly as much as the CLI trusts its argv, so access control is the
/// filesystem permission on the socket path.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SERVER_H
#define NV_SERVE_SERVER_H

#include "serve/Serve.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace nv {

class Server {
public:
  struct Options {
    std::string SocketPath;
    ServeConfig Core;
    /// Longest accepted request line; beyond it the connection gets a
    /// one-line JSON error (code 2) and closes. 0 = unbounded.
    size_t MaxLineBytes = 1 << 20;
    /// A connection with no bytes for this long gets a one-line JSON
    /// error (code 3) and closes, reclaiming its fd and thread. 0 = off.
    unsigned IdleTimeoutMs = 300000;
  };

  struct CreateResult {
    std::unique_ptr<Server> Srv;
    std::string Error; ///< Set when Srv is null.
    int ExitCode = 2;  ///< Suggested process exit code on failure.
  };

  /// Binds the socket (replacing a stale file whose daemon is gone,
  /// refusing a path another live daemon answers on) and builds the core,
  /// replaying any journaled pending requests.
  static CreateResult create(const Options &Opts);

  ~Server();

  /// Accept loop. Returns when a shutdown request executes (exit 0) or
  /// \p Cancel trips (exit 3, the resource/cancellation code). Closes and
  /// unlinks the socket, drains connections, before returning.
  int run(CancelToken *Cancel);

  ServeCore &core() { return *Core; }
  const std::string &socketPath() const { return Path; }

private:
  Server() = default;

  void connectionLoop(int Fd);

  std::string Path;
  int ListenFd = -1;
  size_t MaxLineBytes = 1 << 20;
  unsigned IdleTimeoutMs = 300000;
  std::unique_ptr<ServeCore> Core;

  std::mutex ConnM;
  std::vector<int> ConnFds; ///< Live connection fds (for shutdown nudge).
  std::vector<std::thread> ConnThreads;
};

} // namespace nv

#endif // NV_SERVE_SERVER_H
