//===- Json.h - Minimal JSON value, parser, and writer ----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON implementation for the serve protocol
/// (newline-delimited JSON over a local socket). Deliberately minimal:
/// one value type, recursive-descent parsing with positions in error
/// messages, and compact single-line serialization (the wire format is
/// one request or response per line, so the writer never emits newlines).
///
/// Objects preserve insertion order (responses render deterministically,
/// which the CI assertions and journal byte-comparisons rely on) and
/// lookup is linear — protocol objects have at most a dozen keys.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_JSON_H
#define NV_SERVE_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nv {

class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(std::nullptr_t) : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), BoolV(B) {}
  Json(double D) : K(Kind::Number), NumV(D) {}
  Json(int I) : K(Kind::Number), NumV(I) {}
  Json(unsigned I) : K(Kind::Number), NumV(I) {}
  Json(int64_t I) : K(Kind::Number), NumV(static_cast<double>(I)) {}
  Json(uint64_t I) : K(Kind::Number), NumV(static_cast<double>(I)) {}
  Json(const char *S) : K(Kind::String), StrV(S) {}
  Json(std::string S) : K(Kind::String), StrV(std::move(S)) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return BoolV; }
  double number() const { return NumV; }
  const std::string &str() const { return StrV; }
  const std::vector<Json> &items() const { return Items; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Array append (value must be an Array).
  void push(Json V) { Items.push_back(std::move(V)); }
  /// Object set: replaces an existing key, appends otherwise.
  void set(const std::string &Key, Json V);
  /// Member lookup; null when absent or not an object.
  const Json *get(const std::string &Key) const;

  //===--------------------------------------------------------------------===//
  // Typed accessors with defaults (the request-option idiom)
  //===--------------------------------------------------------------------===//

  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  double getNumber(const std::string &Key, double Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

  /// Compact single-line serialization.
  std::string dump() const;

  /// Parses exactly one JSON value from \p Text (surrounding whitespace
  /// allowed, trailing garbage rejected). On failure returns null and sets
  /// \p Error with a byte offset.
  static bool parse(const std::string &Text, Json &Out, std::string &Error);

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;
};

} // namespace nv

#endif // NV_SERVE_JSON_H
