//===- RequestLog.cpp - Journal-backed request-queue crash log ----------------===//

#include "serve/RequestLog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace nv;

RunBinding RequestLog::binding() {
  RunBinding B;
  B.set("tool", "nv-serve");
  B.set("log", "request-queue");
  B.set("version", "1");
  return B;
}

RequestLog::OpenResult RequestLog::open(const std::string &Path) {
  OpenResult Res;
  std::string Header = binding().render();
  JournalRead R = readJournal(Path);

  if (R.St == JournalRead::State::Corrupt) {
    Res.Error = R.Error;
    Res.Hard = true;
    return Res;
  }

  std::unique_ptr<RequestLog> Log(new RequestLog());
  Log->Path = Path;
  std::string Error;

  if (R.St == JournalRead::State::NoFile) {
    Log->Writer = createJournal(Path, Header, Error);
    if (!Log->Writer) {
      Res.Error = Error;
      return Res;
    }
    Res.Log = std::move(Log);
    return Res;
  }

  std::string Why;
  if (!RunBinding::matches(R.Header, Header, Why)) {
    Res.Error = Path + ": not a serve request-queue journal (" + Why +
                "); delete it or pass a different --journal path";
    Res.Hard = true;
    return Res;
  }

  // Replay history: acceptance order is entry order, so the pending list
  // (accepted minus done) comes out in the order requests arrived.
  std::vector<PendingRequest> Accepted;
  for (size_t I = 0; I < R.Entries.size(); ++I) {
    UnitRecord Rec;
    if (!UnitRecord::parse(R.Entries[I], Rec)) {
      Res.Error = Path + ": journal entry " + std::to_string(I) +
                  " is not a request record (journal is corrupt)";
      Res.Hard = true;
      return Res;
    }
    const std::string *Event = Rec.get("event");
    if (!Event) {
      Res.Error = Path + ": journal entry " + std::to_string(I) +
                  " has no event field (journal is corrupt)";
      Res.Hard = true;
      return Res;
    }
    // Ids are "r<seq>"; track the max so new ids never collide.
    if (Rec.Key.size() > 1 && Rec.Key[0] == 'r') {
      uint64_t Seq = std::strtoull(Rec.Key.c_str() + 1, nullptr, 10);
      Log->NextSeq = std::max(Log->NextSeq, Seq + 1);
    }
    if (*Event == "accepted") {
      ++Log->Accepted;
      const std::string *Body = Rec.get("body");
      Accepted.push_back({Rec.Key, Body ? *Body : ""});
    } else if (*Event == "done") {
      ++Log->Done;
      auto It = std::find_if(Accepted.begin(), Accepted.end(),
                             [&](const PendingRequest &P) {
                               return P.Id == Rec.Key;
                             });
      if (It != Accepted.end())
        Accepted.erase(It);
    }
    // Unknown events are tolerated (forward compatibility), not fatal.
  }
  Log->Pending = std::move(Accepted);

  Log->TornTail = R.TornTail;
  Log->Writer = appendJournal(Path, R.ValidBytes, Error);
  if (!Log->Writer) {
    Res.Error = Error;
    return Res;
  }
  Res.Log = std::move(Log);
  return Res;
}

void RequestLog::append(const UnitRecord &R) {
  std::lock_guard<std::mutex> L(M);
  if (!Writer)
    return;
  if (!Writer->append(R.render()) && !WarnedBroken) {
    WarnedBroken = true;
    std::fprintf(stderr,
                 "nv-serve: warning: request journal %s stopped recording "
                 "(%s); requests keep running without crash logging\n",
                 Writer->path().c_str(), Writer->lastError().c_str());
  }
}

void RequestLog::recordAccepted(const std::string &Id,
                                const std::string &Body) {
  UnitRecord R;
  R.Key = Id;
  R.add("event", "accepted");
  R.add("body", Body);
  append(R);
}

void RequestLog::recordDone(const std::string &Id, int Code,
                            const std::string &Outcome) {
  UnitRecord R;
  R.Key = Id;
  R.add("event", "done");
  R.addInt("code", Code);
  R.add("outcome", Outcome);
  append(R);
}
