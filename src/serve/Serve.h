//===- Serve.h - Long-lived verification service core -----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `nv serve` session and request manager, independent of any socket:
/// a ServeCore holds loaded networks resident (parsed AST, evaluators with
/// pinned closures, the MTBDD context) so one `load` followed by many
/// `verify`/`sim`/`ft` requests hits warm caches — the parse, typecheck,
/// Fig. 5 transform, closure compilation, and predicate-BDD work all
/// amortize across requests instead of being repaid per CLI invocation.
///
/// Requests are single-line JSON objects; responses are single-line JSON
/// with at least {"id", "ok", "code"} where "code" follows the CLI exit
/// taxonomy (0 ok, 1 property falsified, 2 user error, 3 resource
/// exhausted, 4 internal error). Verbs:
///
///   ping      liveness probe
///   load      {"session"?, "program"|"path"} -> resident session
///   unload    {"session"} drop a session
///   sim       {"session", "native"?, budgets...} Algorithm 1 run
///   verify    {"session", "timeout_ms"?, budgets...} SMT verification
///   ft        {"session", "links"?, "node"?, "native"?, budgets...}
///             Fig. 5 fault-tolerance analysis (the warm-path showcase:
///             the meta-program and its evaluators are cached per
///             (links, node, native) key, so repeat queries skip the
///             transform and go straight to the meta-simulation)
///   stats     pool occupancy, cache hit rates, GC counters, latencies
///   health    admission state: "ready" | "overloaded" | "draining"
///   shutdown  ask the daemon to exit cleanly
///
/// Overload: engine verbs (load/unload/sim/verify/ft) pass admission
/// control — when MaxInflight of them are executing and QueueDepth more
/// wait, a new one is shed with an immediate code-3 response carrying
/// "overloaded": true and a "retry_after_ms" backoff hint, and is never
/// journaled. Control verbs always get through. Under a configured heap
/// watermark the daemon degrades before rejecting: result memos, then
/// idle sessions (coldest first), are given back ahead of bouncing a
/// load. See DESIGN.md §8 "Overload & supervision".
///
/// Two cache layers serve the query verbs. The engine-artifact layer
/// (parsed AST, evaluators with pinned closures, the ft meta-program per
/// (links, node, native) key) makes a recompute warm: the transform and
/// closure builds are skipped, only the simulation/solve re-runs. Above
/// it, a per-session result memo answers an *identical* repeat query
/// from the cached response without running any engine — sound because
/// every engine is deterministic for a fixed program and options (the
/// warm/cold bit-identity the tests pin down). Only verdict responses
/// (code 0/1) memoize; errors and budget/cancellation trips always
/// re-run, and a reload replaces the session, caches included. Pass
/// "fresh": true on a query to force a recompute (it refreshes the memo).
///
/// Budget options (deadline_ms, max_steps, node_budget, heap_budget) arm
/// a per-request Governor scope, so one request tripping its budget — or
/// its client disconnecting, via the per-request CancelToken — never
/// perturbs concurrent requests or the daemon itself.
///
/// Concurrency model: requests dispatch onto the shared ThreadPool via
/// submit(); each session has a mutex (an NvContext is single-threaded),
/// so requests to the same session serialize while requests to different
/// sessions run in parallel.
///
/// Crash durability: with a journal path configured, every accepted
/// request is recorded before it runs and marked done when it finishes
/// (support/Journal.h frames). create() replays accepted-but-unfinished
/// requests from a previous process in acceptance order before serving.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SERVE_H
#define NV_SERVE_SERVE_H

#include "serve/Json.h"
#include "serve/RequestLog.h"
#include "support/Governor.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace nv {

struct ServeSession;

struct ServeConfig {
  /// Worker threads for the request pool. 0 = NV_THREADS / hardware
  /// concurrency. Note a pool of one runs submit() inline, which makes
  /// every request synchronous — fine for tests, but disconnect
  /// cancellation needs a second thread to observe the hangup.
  unsigned Threads = 0;
  /// Resident-session cap; loading beyond it evicts the least recently
  /// used session (never the one just loaded).
  size_t MaxSessions = 8;
  /// Optional request-queue crash log (RequestLog.h). Empty = no journal.
  std::string JournalPath;

  /// Admission control. A submitted engine request (load/unload/sim/
  /// verify/ft) arriving when MaxInflight requests are already executing
  /// AND QueueDepth more are waiting is shed: an immediate code-3
  /// response with "overloaded": true and a "retry_after_ms" hint,
  /// never journaled, never queued. Control verbs (ping/stats/health/
  /// shutdown) are always admitted so a saturated daemon stays
  /// observable and stoppable. MaxInflight 0 = the pool's worker count
  /// (threads - 1: submitted tasks only run on workers).
  size_t MaxInflight = 0;
  size_t QueueDepth = 64;

  /// Soft MTBDD heap budget summed across all resident sessions (bytes,
  /// 0 = unlimited). A `load` arriving above the watermark first purges
  /// result memos, then evicts idle sessions coldest-first; only when
  /// nothing evictable remains (every other session is mid-request) is
  /// the load itself rejected with the overloaded response.
  size_t HeapBudgetBytes = 0;

  /// Per-session result-memo entry cap (oldest-entry eviction; 0 = off).
  size_t MemoEntryCap = 256;

  /// Supervisor restart generation (0 = first/unsupervised life),
  /// surfaced in stats so operators can see crash-restart churn.
  uint64_t Generation = 0;

  /// Why the previous supervised life ended ("signal:9", "code:4", ...;
  /// "" = first life). Set from NV_SERVE_LAST_EXIT and surfaced in the
  /// health verb, so operators see crash *causes*, not just the count.
  std::string LastExit;
};

class ServeCore {
public:
  struct CreateResult {
    std::unique_ptr<ServeCore> Core;
    std::string Error; ///< Set when Core is null.
    bool Hard = false; ///< Journal corruption/mismatch: exit 2.
  };

  /// Builds the core, opening the journal and synchronously replaying any
  /// pending requests from a previous process (their outcomes are
  /// journaled as usual; a replayed shutdown is drained without stopping
  /// the fresh daemon).
  static CreateResult create(const ServeConfig &Cfg);

  ~ServeCore();

  /// Completion handle for an asynchronous request.
  struct Pending {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    Json Response;

    /// Blocks until the response is ready, then returns it.
    Json wait();
    /// Waits up to \p Ms milliseconds; false on timeout.
    bool waitFor(unsigned Ms);
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// Accepts one request line: journals acceptance, dispatches onto the
  /// pool, returns immediately. \p Cancel (optional) is polled at the
  /// request's engine safe points — trip it to abandon the request (it
  /// still completes, with a Canceled outcome, keeping session state and
  /// the journal consistent).
  PendingPtr submit(const std::string &Line,
                    std::shared_ptr<CancelToken> Cancel = nullptr);

  /// Synchronous convenience: accept, execute inline, return the response.
  Json executeLine(const std::string &Line, CancelToken *Cancel = nullptr);

  /// True once a shutdown request was executed; the socket layer's accept
  /// loop polls this.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// The health verb's state machine, cheap enough to poll per request:
  /// "draining" once shutdown was requested, "overloaded" while admission
  /// would shed an engine verb arriving right now, else "ready".
  const char *healthState() const;

  /// True when an engine verb submitted now would be shed (MaxInflight
  /// requests executing and QueueDepth more already waiting).
  bool wouldShed() const;

  /// Pending requests replayed from the journal during create().
  size_t replayedCount() const { return Replayed; }

  ThreadPool &pool() { return Pool; }

  /// The stats verb's payload (also handy for tests).
  Json statsJson() const;

private:
  explicit ServeCore(const ServeConfig &Cfg);

  // Request lifecycle.
  Json run(const std::string &Id, const std::string &Line,
           CancelToken *Cancel, bool RecordAccepted);
  Json dispatch(const std::string &Id, const std::string &Line,
                CancelToken *Cancel);

  // Verb executors (Session mutex held where one is passed).
  Json doLoad(const Json &Req, const std::string &Id);
  Json doSim(ServeSession &S, const Json &Req, const std::string &Id,
             CancelToken *Cancel);
  Json doVerify(ServeSession &S, const Json &Req, const std::string &Id,
                CancelToken *Cancel);
  Json doFt(ServeSession &S, const Json &Req, const std::string &Id,
            CancelToken *Cancel);

  std::shared_ptr<ServeSession> findSession(const std::string &Name);
  void noteLatency(double Ms);

  /// The shed response: code 3, "overloaded": true, a retry_after_ms
  /// hint. Never journaled — a shed request was never accepted.
  Json shedResponse(const std::string &Id) const;
  /// Backoff hint for shed responses: recent mean latency scaled by queue
  /// occupancy per worker, clamped to [25, 5000] ms.
  unsigned retryAfterMsHint() const;
  /// Sum of every resident session's approximate MTBDD heap bytes.
  uint64_t residentBytesApprox() const;
  /// Degradation under pressure, called before an expensive load when a
  /// heap budget is configured: purge idle sessions' result memos, then
  /// evict idle sessions coldest-first, until the resident total drops
  /// under the budget or nothing evictable remains. \p Exempt (the
  /// session being (re)loaded) is never touched. Returns true if the
  /// total is under budget on exit.
  bool relievePressure(const std::string &Exempt);
  /// Oldest-entry memo eviction down to Cfg.MemoEntryCap (session mutex
  /// held by the caller).
  void capMemo(ServeSession &S);

  ServeConfig Cfg;
  std::unique_ptr<RequestLog> Log;
  std::chrono::steady_clock::time_point Start;
  std::atomic<bool> Shutdown{false};
  bool Replaying = false; ///< Only set during create(), before threads.
  size_t Replayed = 0;

  std::atomic<uint64_t> NextSeq{1};     ///< Request ids ("r<seq>").
  std::atomic<uint64_t> NextSession{1}; ///< Generated session names.

  mutable std::mutex SessionsM;
  std::map<std::string, std::shared_ptr<ServeSession>> Sessions;
  std::atomic<uint64_t> SessionsLoaded{0};
  std::atomic<uint64_t> SessionsEvicted{0};

  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Active{0};
  std::array<std::atomic<uint64_t>, 5> ByCode{};

  /// Admission control. ReqActive/ReqQueued track *engine* requests only
  /// (control verbs are always admitted and excluded from the backlog);
  /// MaxInflightEff is Cfg.MaxInflight resolved against the pool size.
  size_t MaxInflightEff = 1;
  std::atomic<uint64_t> ReqActive{0};
  std::atomic<uint64_t> ReqQueued{0};
  std::atomic<uint64_t> Shed{0}; ///< Requests rejected by admission.
  /// Degradation counters: memo entries dropped (cap or pressure), idle
  /// sessions evicted by the heap watermark, loads rejected because
  /// nothing could be evicted.
  std::atomic<uint64_t> MemoEvicted{0};
  std::atomic<uint64_t> PressureEvicted{0};
  std::atomic<uint64_t> LoadsRejected{0};
  /// ft transform-cache hits/misses: a hit is a repeat (links, node,
  /// native) query on a session — the warm path the service exists for.
  std::atomic<uint64_t> FtWarmHits{0};
  std::atomic<uint64_t> FtWarmMisses{0};
  /// Result-memo hits/misses: a hit answers an identical repeat query
  /// from the session's response cache without running any engine.
  std::atomic<uint64_t> ResultHits{0};
  std::atomic<uint64_t> ResultMisses{0};

  /// Bounded ring of request latencies (accept -> response) for the
  /// stats verb's percentiles.
  mutable std::mutex LatM;
  std::vector<double> LatRing;
  size_t LatPos = 0;
  size_t LatCount = 0;

  /// Declared last so it is destroyed first: queued request tasks drain
  /// (inline, in the pool destructor) while every member they touch —
  /// sessions, journal, counters — is still alive.
  ThreadPool Pool;
};

} // namespace nv

#endif // NV_SERVE_SERVE_H
