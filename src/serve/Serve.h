//===- Serve.h - Long-lived verification service core -----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `nv serve` session and request manager, independent of any socket:
/// a ServeCore holds loaded networks resident (parsed AST, evaluators with
/// pinned closures, the MTBDD context) so one `load` followed by many
/// `verify`/`sim`/`ft` requests hits warm caches — the parse, typecheck,
/// Fig. 5 transform, closure compilation, and predicate-BDD work all
/// amortize across requests instead of being repaid per CLI invocation.
///
/// Requests are single-line JSON objects; responses are single-line JSON
/// with at least {"id", "ok", "code"} where "code" follows the CLI exit
/// taxonomy (0 ok, 1 property falsified, 2 user error, 3 resource
/// exhausted, 4 internal error). Verbs:
///
///   ping      liveness probe
///   load      {"session"?, "program"|"path"} -> resident session
///   unload    {"session"} drop a session
///   sim       {"session", "native"?, budgets...} Algorithm 1 run
///   verify    {"session", "timeout_ms"?, budgets...} SMT verification
///   ft        {"session", "links"?, "node"?, "native"?, budgets...}
///             Fig. 5 fault-tolerance analysis (the warm-path showcase:
///             the meta-program and its evaluators are cached per
///             (links, node, native) key, so repeat queries skip the
///             transform and go straight to the meta-simulation)
///   stats     pool occupancy, cache hit rates, GC counters, latencies
///   shutdown  ask the daemon to exit cleanly
///
/// Two cache layers serve the query verbs. The engine-artifact layer
/// (parsed AST, evaluators with pinned closures, the ft meta-program per
/// (links, node, native) key) makes a recompute warm: the transform and
/// closure builds are skipped, only the simulation/solve re-runs. Above
/// it, a per-session result memo answers an *identical* repeat query
/// from the cached response without running any engine — sound because
/// every engine is deterministic for a fixed program and options (the
/// warm/cold bit-identity the tests pin down). Only verdict responses
/// (code 0/1) memoize; errors and budget/cancellation trips always
/// re-run, and a reload replaces the session, caches included. Pass
/// "fresh": true on a query to force a recompute (it refreshes the memo).
///
/// Budget options (deadline_ms, max_steps, node_budget, heap_budget) arm
/// a per-request Governor scope, so one request tripping its budget — or
/// its client disconnecting, via the per-request CancelToken — never
/// perturbs concurrent requests or the daemon itself.
///
/// Concurrency model: requests dispatch onto the shared ThreadPool via
/// submit(); each session has a mutex (an NvContext is single-threaded),
/// so requests to the same session serialize while requests to different
/// sessions run in parallel.
///
/// Crash durability: with a journal path configured, every accepted
/// request is recorded before it runs and marked done when it finishes
/// (support/Journal.h frames). create() replays accepted-but-unfinished
/// requests from a previous process in acceptance order before serving.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SERVE_H
#define NV_SERVE_SERVE_H

#include "serve/Json.h"
#include "serve/RequestLog.h"
#include "support/Governor.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace nv {

struct ServeSession;

struct ServeConfig {
  /// Worker threads for the request pool. 0 = NV_THREADS / hardware
  /// concurrency. Note a pool of one runs submit() inline, which makes
  /// every request synchronous — fine for tests, but disconnect
  /// cancellation needs a second thread to observe the hangup.
  unsigned Threads = 0;
  /// Resident-session cap; loading beyond it evicts the least recently
  /// used session (never the one just loaded).
  size_t MaxSessions = 8;
  /// Optional request-queue crash log (RequestLog.h). Empty = no journal.
  std::string JournalPath;
};

class ServeCore {
public:
  struct CreateResult {
    std::unique_ptr<ServeCore> Core;
    std::string Error; ///< Set when Core is null.
    bool Hard = false; ///< Journal corruption/mismatch: exit 2.
  };

  /// Builds the core, opening the journal and synchronously replaying any
  /// pending requests from a previous process (their outcomes are
  /// journaled as usual; a replayed shutdown is drained without stopping
  /// the fresh daemon).
  static CreateResult create(const ServeConfig &Cfg);

  ~ServeCore();

  /// Completion handle for an asynchronous request.
  struct Pending {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    Json Response;

    /// Blocks until the response is ready, then returns it.
    Json wait();
    /// Waits up to \p Ms milliseconds; false on timeout.
    bool waitFor(unsigned Ms);
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// Accepts one request line: journals acceptance, dispatches onto the
  /// pool, returns immediately. \p Cancel (optional) is polled at the
  /// request's engine safe points — trip it to abandon the request (it
  /// still completes, with a Canceled outcome, keeping session state and
  /// the journal consistent).
  PendingPtr submit(const std::string &Line,
                    std::shared_ptr<CancelToken> Cancel = nullptr);

  /// Synchronous convenience: accept, execute inline, return the response.
  Json executeLine(const std::string &Line, CancelToken *Cancel = nullptr);

  /// True once a shutdown request was executed; the socket layer's accept
  /// loop polls this.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  /// Pending requests replayed from the journal during create().
  size_t replayedCount() const { return Replayed; }

  ThreadPool &pool() { return Pool; }

  /// The stats verb's payload (also handy for tests).
  Json statsJson() const;

private:
  explicit ServeCore(const ServeConfig &Cfg);

  // Request lifecycle.
  Json run(const std::string &Id, const std::string &Line,
           CancelToken *Cancel, bool RecordAccepted);
  Json dispatch(const std::string &Id, const std::string &Line,
                CancelToken *Cancel);

  // Verb executors (Session mutex held where one is passed).
  Json doLoad(const Json &Req, const std::string &Id);
  Json doSim(ServeSession &S, const Json &Req, const std::string &Id,
             CancelToken *Cancel);
  Json doVerify(ServeSession &S, const Json &Req, const std::string &Id,
                CancelToken *Cancel);
  Json doFt(ServeSession &S, const Json &Req, const std::string &Id,
            CancelToken *Cancel);

  std::shared_ptr<ServeSession> findSession(const std::string &Name);
  void noteLatency(double Ms);

  ServeConfig Cfg;
  std::unique_ptr<RequestLog> Log;
  std::chrono::steady_clock::time_point Start;
  std::atomic<bool> Shutdown{false};
  bool Replaying = false; ///< Only set during create(), before threads.
  size_t Replayed = 0;

  std::atomic<uint64_t> NextSeq{1};     ///< Request ids ("r<seq>").
  std::atomic<uint64_t> NextSession{1}; ///< Generated session names.

  mutable std::mutex SessionsM;
  std::map<std::string, std::shared_ptr<ServeSession>> Sessions;
  std::atomic<uint64_t> SessionsLoaded{0};
  std::atomic<uint64_t> SessionsEvicted{0};

  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Active{0};
  std::array<std::atomic<uint64_t>, 5> ByCode{};
  /// ft transform-cache hits/misses: a hit is a repeat (links, node,
  /// native) query on a session — the warm path the service exists for.
  std::atomic<uint64_t> FtWarmHits{0};
  std::atomic<uint64_t> FtWarmMisses{0};
  /// Result-memo hits/misses: a hit answers an identical repeat query
  /// from the session's response cache without running any engine.
  std::atomic<uint64_t> ResultHits{0};
  std::atomic<uint64_t> ResultMisses{0};

  /// Bounded ring of request latencies (accept -> response) for the
  /// stats verb's percentiles.
  mutable std::mutex LatM;
  std::vector<double> LatRing;
  size_t LatPos = 0;
  size_t LatCount = 0;

  /// Declared last so it is destroyed first: queued request tasks drain
  /// (inline, in the pool destructor) while every member they touch —
  /// sessions, journal, counters — is still alive.
  ThreadPool Pool;
};

} // namespace nv

#endif // NV_SERVE_SERVE_H
