//===- Client.cpp - Serve-protocol client -------------------------------------===//

#include "serve/Client.h"

#include "serve/Json.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace nv;

std::unique_ptr<ServeClient> ServeClient::connect(const std::string &Path,
                                                  std::string &Error,
                                                  const ClientOptions &Opts) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "socket path too long: " + Path;
    return nullptr;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  // Non-blocking connect + poll gives the connect a deadline; the fd goes
  // back to blocking afterwards (readLine does its own poll-based
  // deadline, sends are small enough for the socket buffer).
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Opts.ConnectTimeoutMs && Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (RC != 0 && errno == EINPROGRESS && Opts.ConnectTimeoutMs) {
    pollfd P{Fd, POLLOUT, 0};
    int PN = ::poll(&P, 1, static_cast<int>(Opts.ConnectTimeoutMs));
    if (PN <= 0) {
      Error = Path + ": connect: timed out after " +
              std::to_string(Opts.ConnectTimeoutMs) + " ms";
      ::close(Fd);
      return nullptr;
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    RC = SoErr == 0 ? 0 : -1;
    errno = SoErr;
  }
  if (RC != 0) {
    Error = Path + ": connect: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  if (Opts.ConnectTimeoutMs && Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags);
  return std::unique_ptr<ServeClient>(new ServeClient(Fd, Opts));
}

ServeClient::~ServeClient() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ServeClient::send(const std::string &Line, std::string &Error) {
  std::string Data = Line;
  Data += '\n';
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool ServeClient::readLine(std::string &Out, std::string &Error) {
  TimedOut = false;
  char Chunk[4096];
  size_t Nl;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Opts.ReadTimeoutMs);
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    if (Opts.ReadTimeoutMs) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0) {
        TimedOut = true;
        Error = "read timed out after " + std::to_string(Opts.ReadTimeoutMs) +
                " ms";
        return false;
      }
      pollfd P{Fd, POLLIN, 0};
      int PN = ::poll(&P, 1, static_cast<int>(Left));
      if (PN < 0) {
        if (errno == EINTR)
          continue;
        Error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      if (PN == 0)
        continue; // loop re-checks the deadline and times out
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      Error = N == 0 ? "daemon closed the connection"
                     : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  Out = Buf.substr(0, Nl);
  Buf.erase(0, Nl + 1);
  if (!Out.empty() && Out.back() == '\r')
    Out.pop_back();
  return true;
}

bool ServeClient::request(const std::string &Line, std::string &Response,
                          std::string &Error) {
  return send(Line, Error) && readLine(Response, Error);
}

//===----------------------------------------------------------------------===//
// Retry / backoff
//===----------------------------------------------------------------------===//

static uint64_t xorshift64(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

unsigned nv::retryDelayMs(unsigned Attempt, const RetryOptions &Opts,
                          uint64_t &JitterState, unsigned RetryAfterMs) {
  if (Attempt == 0)
    return RetryAfterMs;
  uint64_t Delay = Opts.BackoffBaseMs ? Opts.BackoffBaseMs : 1;
  for (unsigned I = 1; I < Attempt && Delay < Opts.BackoffCapMs; ++I)
    Delay *= 2;
  if (Delay > Opts.BackoffCapMs)
    Delay = Opts.BackoffCapMs;
  // Jitter into [delay/2, delay]: enough spread to break retry lockstep,
  // never so much that the cap is exceeded or the wait collapses to 0.
  uint64_t Half = Delay / 2;
  if (Half)
    Delay = Half + xorshift64(JitterState) % (Half + 1);
  // The server's hint is a floor, not a cap: it knows its backlog.
  if (Delay < RetryAfterMs)
    Delay = RetryAfterMs;
  return static_cast<unsigned>(Delay);
}

bool ResilientClient::request(const std::string &Line, std::string &Response,
                              std::string &Error) {
  TimedOut = false;
  Error.clear();
  for (unsigned Attempt = 1;; ++Attempt) {
    unsigned RetryAfterMs = 0;
    bool Transient = false;

    if (!Conn)
      Conn = ServeClient::connect(Path, Error, CO);
    if (!Conn) {
      // Refused/absent: the supervisor may be restarting the worker and
      // the socket will come back. (connect() reports its own timeout as
      // an error string; that is transient too — the daemon may be
      // saturated in accept.)
      Transient = true;
    } else if (Conn->request(Line, Response, Error)) {
      Json R;
      std::string ParseErr;
      if (Json::parse(Response, R, ParseErr) && R.getBool("overloaded")) {
        // Shed by admission control: transient by design. Honor the
        // server's backoff hint; the connection itself is fine.
        Transient = true;
        RetryAfterMs =
            static_cast<unsigned>(R.getNumber("retry_after_ms", 0));
        Error = "server overloaded";
      } else {
        return true; // any other response, error responses included
      }
    } else {
      if (Conn->timedOut()) {
        // The request may still be running server-side; re-sending would
        // double the work. Surface the timeout instead.
        TimedOut = true;
        Conn.reset();
        return false;
      }
      // Reset / daemon closed: the worker likely died mid-request. The
      // journal replays accepted work, so retrying is safe for the
      // engine and at worst recomputes.
      Conn.reset();
      Transient = true;
    }

    if (!Transient || Attempt >= RO.MaxAttempts) {
      if (Transient)
        Error += " (gave up after " + std::to_string(Attempt) + " attempts)";
      return false;
    }
    ++Retries;
    unsigned DelayMs = retryDelayMs(Attempt, RO, JitterState, RetryAfterMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
  }
}
