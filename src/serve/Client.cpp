//===- Client.cpp - Serve-protocol client -------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace nv;

std::unique_ptr<ServeClient> ServeClient::connect(const std::string &Path,
                                                  std::string &Error) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "socket path too long: " + Path;
    return nullptr;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = Path + ": connect: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(Fd));
}

ServeClient::~ServeClient() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ServeClient::send(const std::string &Line, std::string &Error) {
  std::string Data = Line;
  Data += '\n';
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool ServeClient::readLine(std::string &Out, std::string &Error) {
  char Chunk[4096];
  size_t Nl;
  while ((Nl = Buf.find('\n')) == std::string::npos) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      Error = N == 0 ? "daemon closed the connection"
                     : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  Out = Buf.substr(0, Nl);
  Buf.erase(0, Nl + 1);
  if (!Out.empty() && Out.back() == '\r')
    Out.pop_back();
  return true;
}

bool ServeClient::request(const std::string &Line, std::string &Response,
                          std::string &Error) {
  return send(Line, Error) && readLine(Response, Error);
}
