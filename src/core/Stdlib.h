//===- Stdlib.h - Built-in NV include registry ------------------*- C++ -*-===//
//
// Part of nv-cpp. Standard NV protocol models available to `include`
// directives (the paper's `include bgp` of Fig. 2b).
//
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_STDLIB_H
#define NV_CORE_STDLIB_H

#include <optional>
#include <string>

namespace nv {

/// Returns the NV source registered under \p Name, or std::nullopt.
/// Registered models: "bgp" (Fig. 2a), "bgpTrace" (Fig. 3 traversed-nodes
/// variant), "rip" (hop-count vector protocol), "ospf" (weighted
/// shortest-path with areas).
std::optional<std::string> builtinInclude(const std::string &Name);

} // namespace nv

#endif // NV_CORE_STDLIB_H
