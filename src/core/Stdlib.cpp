//===- Stdlib.cpp - Built-in NV include registry ---------------------------===//

#include "core/Stdlib.h"

using namespace nv;

namespace {

/// Fig. 2a: the cut-down BGP model. Routes are optional records of path
/// length, local preference, multi-exit discriminator, communities and
/// originator; merge prefers high lp, then short path, then low med.
const char *BgpModel = R"nv(
type bgp = {length : int; lp : int; med : int; comms : set[int]; origin : node}
type attribute = option[bgp]

let transBgp (e : edge) (x : attribute) =
  match x with
  | None -> None
  | Some b -> Some {b with length = b.length + 1}

let isBetter (x : attribute) (y : attribute) =
  match x, y with
  | _, None -> true
  | None, _ -> false
  | Some b1, Some b2 ->
    if b1.lp > b2.lp then true
    else if b2.lp > b1.lp then false
    else if b1.length < b2.length then true
    else if b2.length < b1.length then false
    else if b1.med <= b2.med then true else false

let mergeBgp (u : node) (x : attribute) (y : attribute) =
  if isBetter x y then x else y
)nv";

/// Fig. 3: BGP augmented with the set of traversed nodes, used for
/// waypointing properties.
const char *BgpTraceModel = R"nv(
include bgp
type traceAttr = option[(set[node], bgp)]

let transTrace (e : edge) (x : traceAttr) =
  let (u, v) = e in
  match x with
  | None -> None
  | Some (s, b) ->
    (match transBgp e (Some b) with
     | None -> None
     | Some b2 -> Some (s[u := true], b2))

let mergeTrace (u : node) (x : traceAttr) (y : traceAttr) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some (s1, b1), Some (s2, b2) ->
    if isBetter (Some b1) (Some b2) then x else y
)nv";

/// A RIP-style distance-vector model with the protocol's 15-hop horizon.
const char *RipModel = R"nv(
type ripAttr = option[int8]

let transRip (e : edge) (x : ripAttr) =
  match x with
  | None -> None
  | Some d -> if d >= 15u8 then None else Some (d + 1u8)

let mergeRip (u : node) (x : ripAttr) (y : ripAttr) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some d1, Some d2 -> if d1 <= d2 then x else y
)nv";

/// An OSPF-style model with weighted link costs and a 2-bit area tag.
/// transOspfW is parameterized by the link weight so users can instantiate
/// per-edge costs.
const char *OspfModel = R"nv(
type ospfAttr = option[{cost : int; areaId : int2}]

let transOspfW (w : int) (e : edge) (x : ospfAttr) =
  match x with
  | None -> None
  | Some r -> Some {r with cost = r.cost + w}

let mergeOspf (u : node) (x : ospfAttr) (y : ospfAttr) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some r1, Some r2 -> if r1.cost <= r2.cost then x else y
)nv";

} // namespace

std::optional<std::string> nv::builtinInclude(const std::string &Name) {
  if (Name == "bgp")
    return std::string(BgpModel);
  if (Name == "bgpTrace")
    return std::string(BgpTraceModel);
  if (Name == "rip")
    return std::string(RipModel);
  if (Name == "ospf")
    return std::string(OspfModel);
  return std::nullopt;
}
