//===- Printer.cpp - NV pretty printer ------------------------------------===//

#include "core/Printer.h"

#include "support/Fatal.h"

using namespace nv;

namespace {

/// Wraps non-atomic expressions in parentheses when used as operands.
std::string atom(const ExprPtr &E);

std::string printExprImpl(const ExprPtr &E) {
  switch (E->Kind) {
  case ExprKind::Const:
    return E->Lit.str();
  case ExprKind::Var:
    return E->Name;
  case ExprKind::Let: {
    std::string S = "let " + E->Name;
    if (E->Annot)
      S += " : " + typeToString(E->Annot);
    return S + " = " + printExprImpl(E->Args[0]) + " in " +
           printExprImpl(E->Args[1]);
  }
  case ExprKind::Fun: {
    if (!E->Annot)
      return "fun " + E->Name + " -> " + printExprImpl(E->Args[0]);
    return "fun (" + E->Name + " : " + typeToString(E->Annot) + ") -> " +
           printExprImpl(E->Args[0]);
  }
  case ExprKind::App:
    return atom(E->Args[0]) + " " + atom(E->Args[1]);
  case ExprKind::If:
    return "if " + printExprImpl(E->Args[0]) + " then " +
           printExprImpl(E->Args[1]) + " else " + printExprImpl(E->Args[2]);
  case ExprKind::Match: {
    std::string S = "(match " + printExprImpl(E->Args[0]) + " with";
    for (const MatchCase &C : E->Cases)
      S += " | " + C.Pat->str() + " -> " + printExprImpl(C.Body);
    return S + ")";
  }
  case ExprKind::Oper: {
    Op O = E->OpCode;
    switch (O) {
    case Op::Not:
      return "!" + atom(E->Args[0]);
    case Op::MGet:
      return atom(E->Args[0]) + "[" + printExprImpl(E->Args[1]) + "]";
    case Op::MSet:
      return atom(E->Args[0]) + "[" + printExprImpl(E->Args[1]) +
             " := " + printExprImpl(E->Args[2]) + "]";
    case Op::MCreate:
      return "createDict " + atom(E->Args[0]);
    case Op::MMap:
      return "map " + atom(E->Args[0]) + " " + atom(E->Args[1]);
    case Op::MMapIte:
      return "mapIte " + atom(E->Args[0]) + " " + atom(E->Args[1]) + " " +
             atom(E->Args[2]) + " " + atom(E->Args[3]);
    case Op::MCombine:
      return "combine " + atom(E->Args[0]) + " " + atom(E->Args[1]) + " " +
             atom(E->Args[2]);
    default:
      return atom(E->Args[0]) + " " + opToString(O) + " " + atom(E->Args[1]);
    }
  }
  case ExprKind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < E->Args.size(); ++I) {
      if (I)
        S += ", ";
      S += printExprImpl(E->Args[I]);
    }
    return S + ")";
  }
  case ExprKind::Proj:
    return atom(E->Args[0]) + "." + std::to_string(E->Index);
  case ExprKind::Record: {
    std::string S = "{";
    for (size_t I = 0; I < E->Args.size(); ++I) {
      if (I)
        S += "; ";
      S += E->Labels[I] + " = " + printExprImpl(E->Args[I]);
    }
    return S + "}";
  }
  case ExprKind::RecordUpdate: {
    std::string S = "{";
    S += printExprImpl(E->Args[0]);
    S += " with ";
    for (size_t I = 0; I < E->Labels.size(); ++I) {
      if (I)
        S += "; ";
      S += E->Labels[I] + " = " + printExprImpl(E->Args[I + 1]);
    }
    return S + "}";
  }
  case ExprKind::Field:
    return atom(E->Args[0]) + "." + E->Name;
  case ExprKind::Some:
    return "Some " + atom(E->Args[0]);
  case ExprKind::None:
    return "None";
  }
  nv_unreachable("covered switch");
}

bool isAtomic(const ExprPtr &E) {
  switch (E->Kind) {
  case ExprKind::Const:
  case ExprKind::Var:
  case ExprKind::Tuple:
  case ExprKind::Record:
  case ExprKind::RecordUpdate:
  case ExprKind::None:
  case ExprKind::Match: // printed with its own parens
    return true;
  case ExprKind::Proj:
  case ExprKind::Field:
    return isAtomic(E->Args[0]);
  case ExprKind::Oper:
    return E->OpCode == Op::MGet || E->OpCode == Op::MSet
               ? isAtomic(E->Args[0])
               : false;
  default:
    return false;
  }
}

std::string atom(const ExprPtr &E) {
  std::string S = printExprImpl(E);
  if (isAtomic(E))
    return S;
  return "(" + S + ")";
}

} // namespace

std::string nv::printExpr(const ExprPtr &E) { return printExprImpl(E); }

std::string nv::printDecl(const DeclPtr &D) {
  switch (D->Kind) {
  case DeclKind::Let: {
    if (!D->Ty)
      return "let " + D->Name + " = " + printExpr(D->Body);
    // Peel the surface parameters back off so the result annotation can be
    // printed where the parser expects it.
    std::string Params;
    ExprPtr Body = D->Body;
    unsigned Peeled = 0;
    while (Peeled < D->ParamCount && Body->Kind == ExprKind::Fun) {
      Params += Body->Annot ? " (" + Body->Name + " : " +
                                  typeToString(Body->Annot) + ")"
                            : " " + Body->Name;
      Body = Body->Args[0];
      ++Peeled;
    }
    if (Peeled != D->ParamCount) // transformed body: drop the annotation
      return "let " + D->Name + " = " + printExpr(D->Body);
    return "let " + D->Name + Params + " : " + typeToString(D->Ty) + " = " +
           printExpr(Body);
  }
  case DeclKind::Symbolic: {
    std::string S = "symbolic " + D->Name;
    if (D->Ty)
      S += " : " + typeToString(D->Ty);
    if (D->Body)
      S += " = " + printExpr(D->Body);
    return S;
  }
  case DeclKind::Require:
    return "require " + printExpr(D->Body);
  case DeclKind::TypeAlias:
    return "type " + D->Name + " = " + typeToString(D->Ty);
  case DeclKind::Nodes:
    return "let nodes = " + std::to_string(D->NodeCount);
  case DeclKind::Edges: {
    std::string S = "let edges = {";
    for (size_t I = 0; I < D->EdgeList.size(); ++I) {
      if (I)
        S += ";";
      S += std::to_string(D->EdgeList[I].first) + "n=" +
           std::to_string(D->EdgeList[I].second) + "n";
    }
    return S + "}";
  }
  }
  nv_unreachable("covered switch");
}

std::string nv::printProgram(const Program &P) {
  std::string S;
  for (const DeclPtr &D : P.Decls) {
    S += printDecl(D);
    S += '\n';
  }
  return S;
}
