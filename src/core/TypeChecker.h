//===- TypeChecker.h - NV type inference ------------------------*- C++ -*-===//
//
// Part of nv-cpp. Hindley-Milner style inference for NV with sized
// integers, records, options, tuples and total dictionaries.
// Let-polymorphism is granted at top-level declarations (Sec. 3); routing
// messages must end up with a concrete type.
//
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_TYPECHECKER_H
#define NV_CORE_TYPECHECKER_H

#include "core/Ast.h"
#include "support/Diagnostics.h"

namespace nv {

/// Type-checks a whole program in place: fills Expr::Ty on every node,
/// resolves the attribute type into Program::AttrType (from the signatures
/// of init/trans/merge of Fig. 8), validates symbolic/require declarations,
/// and checks node literals against the declared topology.
///
/// \returns true on success; diagnostics are filed otherwise.
bool typeCheck(Program &P, DiagnosticEngine &Diags);

/// Type-checks a closed expression (testing convenience). Returns the
/// zonked type, or null after filing diagnostics.
TypePtr typeCheckExpr(const ExprPtr &E, DiagnosticEngine &Diags);

/// Resolves bound unification variables deeply, producing a type with no
/// bound Var nodes (unbound Vars are kept and denote polymorphism).
TypePtr zonk(const TypePtr &T);

} // namespace nv

#endif // NV_CORE_TYPECHECKER_H
