//===- Ast.cpp - NV abstract syntax ---------------------------------------===//

#include "core/Ast.h"

#include "support/Fatal.h"

#include <algorithm>

using namespace nv;

//===----------------------------------------------------------------------===//
// Literal
//===----------------------------------------------------------------------===//

static uint64_t truncToWidth(uint64_t V, unsigned Width) {
  if (Width >= 64)
    return V;
  return V & ((uint64_t(1) << Width) - 1);
}

Literal Literal::boolLit(bool B) {
  Literal L;
  L.Kind = LiteralKind::Bool;
  L.BoolVal = B;
  return L;
}

Literal Literal::intLit(uint64_t V, unsigned Width) {
  Literal L;
  L.Kind = LiteralKind::Int;
  L.Width = Width;
  L.IntVal = truncToWidth(V, Width);
  return L;
}

Literal Literal::nodeLit(uint32_t N) {
  Literal L;
  L.Kind = LiteralKind::Node;
  L.NodeVal = N;
  return L;
}

Literal Literal::edgeLit(uint32_t U, uint32_t V) {
  Literal L;
  L.Kind = LiteralKind::Edge;
  L.NodeVal = U;
  L.NodeVal2 = V;
  return L;
}

TypePtr Literal::type() const {
  switch (Kind) {
  case LiteralKind::Bool:
    return Type::boolTy();
  case LiteralKind::Int:
    return Type::intTy(Width);
  case LiteralKind::Node:
    return Type::nodeTy();
  case LiteralKind::Edge:
    return Type::edgeTy();
  }
  nv_unreachable("covered switch");
}

bool Literal::equals(const Literal &O) const {
  if (Kind != O.Kind)
    return false;
  switch (Kind) {
  case LiteralKind::Bool:
    return BoolVal == O.BoolVal;
  case LiteralKind::Int:
    return Width == O.Width && IntVal == O.IntVal;
  case LiteralKind::Node:
    return NodeVal == O.NodeVal;
  case LiteralKind::Edge:
    return NodeVal == O.NodeVal && NodeVal2 == O.NodeVal2;
  }
  nv_unreachable("covered switch");
}

std::string Literal::str() const {
  switch (Kind) {
  case LiteralKind::Bool:
    return BoolVal ? "true" : "false";
  case LiteralKind::Int:
    if (Width == 32)
      return std::to_string(IntVal);
    return std::to_string(IntVal) + "u" + std::to_string(Width);
  case LiteralKind::Node:
    return std::to_string(NodeVal) + "n";
  case LiteralKind::Edge:
    return std::to_string(NodeVal) + "~" + std::to_string(NodeVal2);
  }
  nv_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

unsigned nv::opArity(Op O) {
  switch (O) {
  case Op::Not:
  case Op::MCreate:
    return 1;
  case Op::And:
  case Op::Or:
  case Op::Eq:
  case Op::Neq:
  case Op::Add:
  case Op::Sub:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::MGet:
    return 2;
  case Op::MSet:
  case Op::MCombine:
    return 3;
  case Op::MMapIte:
    return 4;
  case Op::MMap:
    return 2;
  }
  nv_unreachable("covered switch");
}

std::string nv::opToString(Op O) {
  switch (O) {
  case Op::And:
    return "&&";
  case Op::Or:
    return "||";
  case Op::Not:
    return "!";
  case Op::Eq:
    return "=";
  case Op::Neq:
    return "<>";
  case Op::Add:
    return "+";
  case Op::Sub:
    return "-";
  case Op::Lt:
    return "<";
  case Op::Le:
    return "<=";
  case Op::Gt:
    return ">";
  case Op::Ge:
    return ">=";
  case Op::MCreate:
    return "createDict";
  case Op::MGet:
    return "get";
  case Op::MSet:
    return "set";
  case Op::MMap:
    return "map";
  case Op::MMapIte:
    return "mapIte";
  case Op::MCombine:
    return "combine";
  }
  nv_unreachable("covered switch");
}

bool nv::isMapOp(Op O) {
  switch (O) {
  case Op::MCreate:
  case Op::MGet:
  case Op::MSet:
  case Op::MMap:
  case Op::MMapIte:
  case Op::MCombine:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Pattern factories
//===----------------------------------------------------------------------===//

PatternPtr Pattern::wild(SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Wild;
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::var(std::string Name, SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Var;
  P->Name = std::move(Name);
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::lit(Literal L, SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Lit;
  P->Lit = L;
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::none(SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::None;
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::some(PatternPtr Inner, SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Some;
  P->Elems.push_back(std::move(Inner));
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::tuple(std::vector<PatternPtr> Ps, SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Tuple;
  P->Elems = std::move(Ps);
  P->Loc = Loc;
  return P;
}

PatternPtr Pattern::record(std::vector<std::string> Labels,
                           std::vector<PatternPtr> Ps, SourceLoc Loc) {
  auto P = std::make_shared<Pattern>();
  P->Kind = PatternKind::Record;
  P->Labels = std::move(Labels);
  P->Elems = std::move(Ps);
  P->Loc = Loc;
  return P;
}

void Pattern::boundVars(std::vector<std::string> &Out) const {
  switch (Kind) {
  case PatternKind::Wild:
  case PatternKind::Lit:
  case PatternKind::None:
    return;
  case PatternKind::Var:
    Out.push_back(Name);
    return;
  case PatternKind::Some:
  case PatternKind::Tuple:
  case PatternKind::Record:
    for (const PatternPtr &E : Elems)
      E->boundVars(Out);
    return;
  }
  nv_unreachable("covered switch");
}

std::string Pattern::str() const {
  switch (Kind) {
  case PatternKind::Wild:
    return "_";
  case PatternKind::Var:
    return Name;
  case PatternKind::Lit:
    return Lit.str();
  case PatternKind::None:
    return "None";
  case PatternKind::Some:
    return "Some " + Elems[0]->str();
  case PatternKind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += Elems[I]->str();
    }
    return S + ")";
  }
  case PatternKind::Record: {
    std::string S = "{";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I)
        S += "; ";
      S += Labels[I] + " = " + Elems[I]->str();
    }
    return S + "}";
  }
  }
  nv_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Expression factories
//===----------------------------------------------------------------------===//

static ExprPtr mk(ExprKind K, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = K;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::constant(Literal L, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Const, Loc);
  E->Lit = L;
  return E;
}

ExprPtr Expr::boolConst(bool B, SourceLoc Loc) {
  return constant(Literal::boolLit(B), Loc);
}

ExprPtr Expr::intConst(uint64_t V, unsigned Width, SourceLoc Loc) {
  return constant(Literal::intLit(V, Width), Loc);
}

ExprPtr Expr::nodeConst(uint32_t N, SourceLoc Loc) {
  return constant(Literal::nodeLit(N), Loc);
}

ExprPtr Expr::edgeConst(uint32_t U, uint32_t V, SourceLoc Loc) {
  return constant(Literal::edgeLit(U, V), Loc);
}

ExprPtr Expr::var(std::string Name, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Var, Loc);
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::let(std::string Name, ExprPtr Init, ExprPtr Body, TypePtr Annot,
                  SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Let, Loc);
  E->Name = std::move(Name);
  E->Args = {std::move(Init), std::move(Body)};
  E->Annot = std::move(Annot);
  return E;
}

ExprPtr Expr::fun(std::string Param, ExprPtr Body, TypePtr Annot,
                  SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Fun, Loc);
  E->Name = std::move(Param);
  E->Args = {std::move(Body)};
  E->Annot = std::move(Annot);
  return E;
}

ExprPtr Expr::app(ExprPtr Fn, ExprPtr Arg, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::App, Loc);
  E->Args = {std::move(Fn), std::move(Arg)};
  return E;
}

ExprPtr Expr::iff(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::If, Loc);
  E->Args = {std::move(Cond), std::move(Then), std::move(Else)};
  return E;
}

ExprPtr Expr::match(ExprPtr Scrut, std::vector<MatchCase> Cases,
                    SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Match, Loc);
  E->Args = {std::move(Scrut)};
  E->Cases = std::move(Cases);
  return E;
}

ExprPtr Expr::oper(Op O, std::vector<ExprPtr> Args, SourceLoc Loc) {
  if (Args.size() != opArity(O))
    fatalError("operator " + opToString(O) + " expects " +
               std::to_string(opArity(O)) + " operands, got " +
               std::to_string(Args.size()));
  ExprPtr E = mk(ExprKind::Oper, Loc);
  E->OpCode = O;
  E->Args = std::move(Args);
  return E;
}

ExprPtr Expr::tuple(std::vector<ExprPtr> Elems, SourceLoc Loc) {
  if (Elems.size() < 2)
    fatalError("tuples need at least two components");
  ExprPtr E = mk(ExprKind::Tuple, Loc);
  E->Args = std::move(Elems);
  return E;
}

ExprPtr Expr::proj(ExprPtr Operand, unsigned Index, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Proj, Loc);
  E->Args = {std::move(Operand)};
  E->Index = Index;
  return E;
}

ExprPtr Expr::record(std::vector<std::string> Labels, std::vector<ExprPtr> Elems,
                     SourceLoc Loc) {
  if (Labels.size() != Elems.size())
    fatalError("record literal label/value mismatch");
  ExprPtr E = mk(ExprKind::Record, Loc);
  E->Labels = std::move(Labels);
  E->Args = std::move(Elems);
  return E;
}

ExprPtr Expr::recordUpdate(ExprPtr Base, std::vector<std::string> Labels,
                           std::vector<ExprPtr> Elems, SourceLoc Loc) {
  if (Labels.size() != Elems.size())
    fatalError("record update label/value mismatch");
  ExprPtr E = mk(ExprKind::RecordUpdate, Loc);
  E->Labels = std::move(Labels);
  E->Args.push_back(std::move(Base));
  for (ExprPtr &V : Elems)
    E->Args.push_back(std::move(V));
  return E;
}

ExprPtr Expr::field(ExprPtr Operand, std::string Label, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Field, Loc);
  E->Args = {std::move(Operand)};
  E->Name = std::move(Label);
  return E;
}

ExprPtr Expr::some(ExprPtr Operand, SourceLoc Loc) {
  ExprPtr E = mk(ExprKind::Some, Loc);
  E->Args = {std::move(Operand)};
  return E;
}

ExprPtr Expr::none(SourceLoc Loc) { return mk(ExprKind::None, Loc); }

ExprPtr Expr::apps(ExprPtr Fn, std::vector<ExprPtr> CallArgs) {
  ExprPtr E = std::move(Fn);
  for (ExprPtr &A : CallArgs)
    E = app(std::move(E), std::move(A));
  return E;
}

ExprPtr Expr::funs(const std::vector<std::string> &Params, ExprPtr Body) {
  ExprPtr E = std::move(Body);
  for (auto It = Params.rbegin(); It != Params.rend(); ++It)
    E = fun(*It, std::move(E));
  return E;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

static DeclPtr mkDecl(DeclKind K, SourceLoc Loc) {
  auto D = std::make_shared<Decl>();
  D->Kind = K;
  D->Loc = Loc;
  return D;
}

DeclPtr Decl::letDecl(std::string Name, ExprPtr Body, SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::Let, Loc);
  D->Name = std::move(Name);
  D->Body = std::move(Body);
  return D;
}

DeclPtr Decl::symbolicDecl(std::string Name, TypePtr Ty, ExprPtr Default,
                           SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::Symbolic, Loc);
  D->Name = std::move(Name);
  D->Ty = std::move(Ty);
  D->Body = std::move(Default);
  return D;
}

DeclPtr Decl::requireDecl(ExprPtr Body, SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::Require, Loc);
  D->Body = std::move(Body);
  return D;
}

DeclPtr Decl::typeAlias(std::string Name, TypePtr Ty, SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::TypeAlias, Loc);
  D->Name = std::move(Name);
  D->Ty = std::move(Ty);
  return D;
}

DeclPtr Decl::nodesDecl(uint32_t N, SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::Nodes, Loc);
  D->NodeCount = N;
  return D;
}

DeclPtr Decl::edgesDecl(std::vector<std::pair<uint32_t, uint32_t>> Edges,
                        SourceLoc Loc) {
  DeclPtr D = mkDecl(DeclKind::Edges, Loc);
  D->EdgeList = std::move(Edges);
  return D;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

uint32_t Program::numNodes() const {
  for (const DeclPtr &D : Decls)
    if (D->Kind == DeclKind::Nodes)
      return D->NodeCount;
  return 0;
}

std::vector<std::pair<uint32_t, uint32_t>> Program::links() const {
  for (const DeclPtr &D : Decls)
    if (D->Kind == DeclKind::Edges)
      return D->EdgeList;
  return {};
}

std::vector<std::pair<uint32_t, uint32_t>> Program::directedEdges() const {
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  for (const auto &[U, V] : links()) {
    Out.emplace_back(U, V);
    Out.emplace_back(V, U);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

const Decl *Program::findLet(const std::string &Name) const {
  for (const DeclPtr &D : Decls)
    if (D->Kind == DeclKind::Let && D->Name == Name)
      return D.get();
  return nullptr;
}

std::vector<const Decl *> Program::symbolics() const {
  std::vector<const Decl *> Out;
  for (const DeclPtr &D : Decls)
    if (D->Kind == DeclKind::Symbolic)
      Out.push_back(D.get());
  return Out;
}

std::vector<const Decl *> Program::requires_() const {
  std::vector<const Decl *> Out;
  for (const DeclPtr &D : Decls)
    if (D->Kind == DeclKind::Require)
      Out.push_back(D.get());
  return Out;
}

//===----------------------------------------------------------------------===//
// Traversal helpers
//===----------------------------------------------------------------------===//

void nv::forEachExpr(const ExprPtr &E,
                     const std::function<void(const ExprPtr &)> &Fn) {
  if (!E)
    return;
  Fn(E);
  for (const ExprPtr &A : E->Args)
    forEachExpr(A, Fn);
  for (const MatchCase &C : E->Cases)
    forEachExpr(C.Body, Fn);
}

static bool patternEquals(const PatternPtr &A, const PatternPtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case PatternKind::Wild:
  case PatternKind::None:
    return true;
  case PatternKind::Var:
    return A->Name == B->Name;
  case PatternKind::Lit:
    return A->Lit.equals(B->Lit);
  case PatternKind::Some:
  case PatternKind::Tuple:
  case PatternKind::Record: {
    if (A->Labels != B->Labels || A->Elems.size() != B->Elems.size())
      return false;
    for (size_t I = 0; I < A->Elems.size(); ++I)
      if (!patternEquals(A->Elems[I], B->Elems[I]))
        return false;
    return true;
  }
  }
  nv_unreachable("covered switch");
}

bool nv::exprEquals(const ExprPtr &A, const ExprPtr &B) {
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  if (A->Name != B->Name || A->Index != B->Index || A->Labels != B->Labels)
    return false;
  if (A->Kind == ExprKind::Const && !A->Lit.equals(B->Lit))
    return false;
  if (A->Kind == ExprKind::Oper && A->OpCode != B->OpCode)
    return false;
  if (A->Args.size() != B->Args.size() || A->Cases.size() != B->Cases.size())
    return false;
  for (size_t I = 0; I < A->Args.size(); ++I)
    if (!exprEquals(A->Args[I], B->Args[I]))
      return false;
  for (size_t I = 0; I < A->Cases.size(); ++I) {
    if (!patternEquals(A->Cases[I].Pat, B->Cases[I].Pat))
      return false;
    if (!exprEquals(A->Cases[I].Body, B->Cases[I].Body))
      return false;
  }
  return true;
}
