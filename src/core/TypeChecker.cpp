//===- TypeChecker.cpp - NV type inference ---------------------------------===//

#include "core/TypeChecker.h"

#include "support/Fatal.h"

#include <map>
#include <set>

using namespace nv;

namespace {

/// A type scheme: a type plus the unification-variable ids quantified over
/// (only produced for top-level lets).
struct Scheme {
  TypePtr Ty;
  std::vector<int> Quantified;
};

class CheckerImpl {
public:
  CheckerImpl(DiagnosticEngine &Diags) : Diags(Diags) {}

  bool checkProgram(Program &P) {
    NumNodes = P.numNodes();
    HasTopology = NumNodes > 0;

    for (DeclPtr &D : P.Decls)
      checkDecl(D);

    // Tie the Fig. 8 signatures to the attribute type.
    TypePtr Attr = Type::varTy();
    bool SawAny = false;
    if (const Decl *D = P.initDecl()) {
      SawAny = true;
      constrainGlobal("init", Type::arrowTy(Type::nodeTy(), Attr), D->Loc);
    }
    if (const Decl *D = P.transDecl()) {
      SawAny = true;
      constrainGlobal(
          "trans", Type::arrowTy(Type::edgeTy(), Type::arrowTy(Attr, Attr)),
          D->Loc);
    }
    if (const Decl *D = P.mergeDecl()) {
      SawAny = true;
      constrainGlobal(
          "merge",
          Type::arrowTy(Type::nodeTy(),
                        Type::arrowTy(Attr, Type::arrowTy(Attr, Attr))),
          D->Loc);
    }
    if (const Decl *D = P.assertDecl())
      constrainGlobal(
          "assert",
          Type::arrowTy(Type::nodeTy(), Type::arrowTy(Attr, Type::boolTy())),
          D->Loc);

    if (SawAny) {
      TypePtr Zonked = zonk(Attr);
      if (!isConcreteType(Zonked))
        Diags.error({}, "attribute type " + typeToString(Zonked) +
                            " is not concrete; routing messages must have a "
                            "concrete first-order type");
      else
        P.AttrType = Zonked;
    }

    if (Diags.hasErrors())
      return false;

    // Zonk all expression types in place for downstream consumers.
    for (DeclPtr &D : P.Decls)
      if (D->Body)
        zonkExpr(D->Body);
    return true;
  }

  TypePtr checkClosedExpr(const ExprPtr &E) {
    TypePtr T = infer(E);
    flushDeferredInts();
    if (Diags.hasErrors())
      return nullptr;
    zonkExpr(E);
    return zonk(T);
  }

private:
  DiagnosticEngine &Diags;
  std::vector<std::map<std::string, Scheme>> Scopes{1};
  uint32_t NumNodes = 0;
  bool HasTopology = false;

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void bind(const std::string &Name, TypePtr T) {
    Scopes.back()[Name] = Scheme{std::move(T), {}};
  }

  void bindScheme(const std::string &Name, Scheme S) {
    Scopes.back()[Name] = std::move(S);
  }

  const Scheme *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  void constrainGlobal(const std::string &Name, TypePtr Expected,
                       SourceLoc Loc) {
    const Scheme *S = lookup(Name);
    if (!S)
      return;
    // The required declarations are used monomorphically: instantiate and
    // unify with the expected shape.
    unify(instantiate(*S), Expected, Loc);
  }

  //===--------------------------------------------------------------------===//
  // Unification
  //===--------------------------------------------------------------------===//

  bool occurs(int VarId, const TypePtr &RawT) {
    TypePtr T = resolve(RawT);
    if (T->Kind == TypeKind::Var)
      return T->VarId == VarId;
    for (const TypePtr &E : T->Elems)
      if (occurs(VarId, E))
        return true;
    return false;
  }

  void typeError(SourceLoc Loc, const TypePtr &A, const TypePtr &B) {
    Diags.error(Loc, "type mismatch: " + typeToString(A) + " vs " +
                         typeToString(B));
  }

  bool unify(TypePtr RawA, TypePtr RawB, SourceLoc Loc) {
    TypePtr A = resolve(std::move(RawA));
    TypePtr B = resolve(std::move(RawB));
    if (A.get() == B.get())
      return true;
    if (A->Kind == TypeKind::Var) {
      if (occurs(A->VarId, B)) {
        Diags.error(Loc, "occurs check failed (recursive type)");
        return false;
      }
      A->Instance = B;
      return true;
    }
    if (B->Kind == TypeKind::Var)
      return unify(B, A, Loc);
    if (A->Kind != B->Kind) {
      typeError(Loc, A, B);
      return false;
    }
    switch (A->Kind) {
    case TypeKind::Bool:
    case TypeKind::Node:
    case TypeKind::Edge:
      return true;
    case TypeKind::Int:
      if (A->Width != B->Width) {
        typeError(Loc, A, B);
        return false;
      }
      return true;
    case TypeKind::Record:
      if (A->Labels != B->Labels) {
        typeError(Loc, A, B);
        return false;
      }
      [[fallthrough]];
    case TypeKind::Option:
    case TypeKind::Tuple:
    case TypeKind::Dict:
    case TypeKind::Arrow: {
      if (A->Elems.size() != B->Elems.size()) {
        typeError(Loc, A, B);
        return false;
      }
      bool Ok = true;
      for (size_t I = 0; I < A->Elems.size(); ++I)
        Ok &= unify(A->Elems[I], B->Elems[I], Loc);
      return Ok;
    }
    case TypeKind::Var:
      break;
    }
    nv_unreachable("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Schemes
  //===--------------------------------------------------------------------===//

  TypePtr instantiate(const Scheme &S) {
    if (S.Quantified.empty())
      return S.Ty;
    std::map<int, TypePtr> Fresh;
    for (int Id : S.Quantified)
      Fresh[Id] = Type::varTy();
    return substitute(S.Ty, Fresh);
  }

  TypePtr substitute(const TypePtr &RawT, const std::map<int, TypePtr> &Sub) {
    TypePtr T = resolve(RawT);
    if (T->Kind == TypeKind::Var) {
      auto It = Sub.find(T->VarId);
      return It == Sub.end() ? T : It->second;
    }
    if (T->Elems.empty())
      return T;
    auto Copy = std::make_shared<Type>(*T);
    for (TypePtr &E : Copy->Elems)
      E = substitute(E, Sub);
    return Copy;
  }

  void freeVars(const TypePtr &RawT, std::set<int> &Out) {
    TypePtr T = resolve(RawT);
    if (T->Kind == TypeKind::Var) {
      Out.insert(T->VarId);
      return;
    }
    for (const TypePtr &E : T->Elems)
      freeVars(E, Out);
  }

  /// Collects variables occurring in dictionary-key positions: these stay
  /// "weak" (not quantified) so that the declaration body's key type is
  /// resolved by its first use — a createDict must evaluate at one
  /// concrete key type.
  void dictKeyVars(const TypePtr &RawT, std::set<int> &Out) {
    TypePtr T = resolve(RawT);
    if (T->Kind == TypeKind::Dict)
      freeVars(T->Elems[0], Out);
    for (const TypePtr &E : T->Elems)
      dictKeyVars(E, Out);
  }

  Scheme generalize(const TypePtr &T) {
    // Top-level environment types are closed except for unification
    // variables; quantify them all except weak (dict-key) variables.
    std::set<int> Vars, Weak;
    freeVars(T, Vars);
    dictKeyVars(T, Weak);
    Scheme S;
    S.Ty = T;
    for (int V : Vars)
      if (!Weak.count(V))
        S.Quantified.push_back(V);
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Inference
  //===--------------------------------------------------------------------===//

  TypePtr litType(const Literal &L, SourceLoc Loc) {
    if (HasTopology) {
      if (L.Kind == LiteralKind::Node && L.NodeVal >= NumNodes)
        Diags.error(Loc, "node literal " + std::to_string(L.NodeVal) +
                             "n out of range (nodes = " +
                             std::to_string(NumNodes) + ")");
      if (L.Kind == LiteralKind::Edge &&
          (L.NodeVal >= NumNodes || L.NodeVal2 >= NumNodes))
        Diags.error(Loc, "edge literal out of range");
    }
    return L.type();
  }

  TypePtr inferPattern(const PatternPtr &P, TypePtr Scrut) {
    switch (P->Kind) {
    case PatternKind::Wild:
      return Scrut;
    case PatternKind::Var:
      bind(P->Name, Scrut);
      return Scrut;
    case PatternKind::Lit:
      unify(Scrut, litType(P->Lit, P->Loc), P->Loc);
      return Scrut;
    case PatternKind::None:
      unify(Scrut, Type::optionTy(Type::varTy()), P->Loc);
      return Scrut;
    case PatternKind::Some: {
      TypePtr Inner = Type::varTy();
      unify(Scrut, Type::optionTy(Inner), P->Loc);
      inferPattern(P->Elems[0], Inner);
      return Scrut;
    }
    case PatternKind::Tuple: {
      TypePtr R = resolve(Scrut);
      // Edges destructure as (node, node).
      if (R->Kind == TypeKind::Edge) {
        if (P->Elems.size() != 2) {
          Diags.error(P->Loc, "edge patterns have exactly two components");
          return Scrut;
        }
        inferPattern(P->Elems[0], Type::nodeTy());
        inferPattern(P->Elems[1], Type::nodeTy());
        return Scrut;
      }
      std::vector<TypePtr> Elems;
      for (size_t I = 0; I < P->Elems.size(); ++I)
        Elems.push_back(Type::varTy());
      unify(Scrut, Type::tupleTy(Elems), P->Loc);
      for (size_t I = 0; I < P->Elems.size(); ++I)
        inferPattern(P->Elems[I], Elems[I]);
      return Scrut;
    }
    case PatternKind::Record: {
      TypePtr R = resolve(Scrut);
      if (R->Kind != TypeKind::Record) {
        Diags.error(P->Loc, "cannot determine the record type matched here; "
                            "add a type annotation");
        return Scrut;
      }
      for (size_t I = 0; I < P->Labels.size(); ++I) {
        int Idx = R->labelIndex(P->Labels[I]);
        if (Idx < 0) {
          Diags.error(P->Loc, "record type " + typeToString(R) +
                                  " has no field '" + P->Labels[I] + "'");
          continue;
        }
        inferPattern(P->Elems[I], R->Elems[Idx]);
      }
      return Scrut;
    }
    }
    nv_unreachable("covered switch");
  }

  TypePtr infer(const ExprPtr &E) {
    TypePtr T = inferImpl(E);
    E->Ty = T;
    return T;
  }

  TypePtr inferImpl(const ExprPtr &E) {
    switch (E->Kind) {
    case ExprKind::Const:
      return litType(E->Lit, E->Loc);
    case ExprKind::Var: {
      const Scheme *S = lookup(E->Name);
      if (!S) {
        Diags.error(E->Loc, "unbound variable '" + E->Name + "'");
        return Type::varTy();
      }
      return instantiate(*S);
    }
    case ExprKind::Let: {
      TypePtr Init = infer(E->Args[0]);
      if (E->Annot)
        unify(Init, E->Annot, E->Loc);
      pushScope();
      bind(E->Name, Init);
      TypePtr Body = infer(E->Args[1]);
      popScope();
      return Body;
    }
    case ExprKind::Fun: {
      TypePtr Param = E->Annot ? E->Annot : Type::varTy();
      pushScope();
      bind(E->Name, Param);
      TypePtr Body = infer(E->Args[0]);
      popScope();
      return Type::arrowTy(Param, Body);
    }
    case ExprKind::App: {
      TypePtr Fn = infer(E->Args[0]);
      TypePtr Arg = infer(E->Args[1]);
      TypePtr Res = Type::varTy();
      unify(Fn, Type::arrowTy(Arg, Res), E->Loc);
      return Res;
    }
    case ExprKind::If: {
      unify(infer(E->Args[0]), Type::boolTy(), E->Args[0]->Loc);
      TypePtr T = infer(E->Args[1]);
      unify(T, infer(E->Args[2]), E->Loc);
      return T;
    }
    case ExprKind::Match: {
      TypePtr Scrut = infer(E->Args[0]);
      TypePtr Res = Type::varTy();
      for (const MatchCase &C : E->Cases) {
        pushScope();
        inferPattern(C.Pat, Scrut);
        unify(Res, infer(C.Body), C.Body->Loc);
        popScope();
      }
      return Res;
    }
    case ExprKind::Oper:
      return inferOper(E);
    case ExprKind::Tuple: {
      std::vector<TypePtr> Elems;
      for (const ExprPtr &A : E->Args)
        Elems.push_back(infer(A));
      return Type::tupleTy(std::move(Elems));
    }
    case ExprKind::Proj: {
      TypePtr T = resolve(infer(E->Args[0]));
      if (T->Kind != TypeKind::Tuple) {
        Diags.error(E->Loc, "projection target is not a tuple: " +
                                typeToString(T));
        return Type::varTy();
      }
      if (E->Index >= T->Elems.size()) {
        Diags.error(E->Loc, "tuple projection index out of range");
        return Type::varTy();
      }
      return T->Elems[E->Index];
    }
    case ExprKind::Record: {
      std::vector<TypePtr> Elems;
      for (const ExprPtr &A : E->Args)
        Elems.push_back(infer(A));
      return Type::recordTy(E->Labels, std::move(Elems));
    }
    case ExprKind::RecordUpdate: {
      TypePtr Base = resolve(infer(E->Args[0]));
      if (Base->Kind != TypeKind::Record) {
        Diags.error(E->Loc, "record update target is not a record: " +
                                typeToString(Base));
        return Type::varTy();
      }
      for (size_t I = 0; I < E->Labels.size(); ++I) {
        int Idx = Base->labelIndex(E->Labels[I]);
        if (Idx < 0) {
          Diags.error(E->Loc, "record type " + typeToString(Base) +
                                  " has no field '" + E->Labels[I] + "'");
          continue;
        }
        unify(infer(E->Args[I + 1]), Base->Elems[Idx], E->Args[I + 1]->Loc);
      }
      return Base;
    }
    case ExprKind::Field: {
      TypePtr T = resolve(infer(E->Args[0]));
      if (T->Kind != TypeKind::Record) {
        Diags.error(E->Loc,
                    "cannot determine the record type of this field access; "
                    "add a type annotation (got " +
                        typeToString(T) + ")");
        return Type::varTy();
      }
      int Idx = T->labelIndex(E->Name);
      if (Idx < 0) {
        Diags.error(E->Loc, "record type " + typeToString(T) +
                                " has no field '" + E->Name + "'");
        return Type::varTy();
      }
      return T->Elems[Idx];
    }
    case ExprKind::Some:
      return Type::optionTy(infer(E->Args[0]));
    case ExprKind::None:
      return Type::optionTy(Type::varTy());
    }
    nv_unreachable("covered switch");
  }

  TypePtr inferOper(const ExprPtr &E) {
    switch (E->OpCode) {
    case Op::And:
    case Op::Or:
      unify(infer(E->Args[0]), Type::boolTy(), E->Args[0]->Loc);
      unify(infer(E->Args[1]), Type::boolTy(), E->Args[1]->Loc);
      return Type::boolTy();
    case Op::Not:
      unify(infer(E->Args[0]), Type::boolTy(), E->Args[0]->Loc);
      return Type::boolTy();
    case Op::Eq:
    case Op::Neq:
      unify(infer(E->Args[0]), infer(E->Args[1]), E->Loc);
      return Type::boolTy();
    case Op::Add:
    case Op::Sub: {
      TypePtr T = infer(E->Args[0]);
      unify(T, infer(E->Args[1]), E->Loc);
      deferIntCheck(T, E->Loc);
      return T;
    }
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      TypePtr T = infer(E->Args[0]);
      unify(T, infer(E->Args[1]), E->Loc);
      deferIntCheck(T, E->Loc);
      return Type::boolTy();
    }
    case Op::MCreate: {
      TypePtr V = infer(E->Args[0]);
      return Type::dictTy(Type::varTy(), V);
    }
    case Op::MGet: {
      TypePtr K = Type::varTy();
      TypePtr V = Type::varTy();
      unify(infer(E->Args[0]), Type::dictTy(K, V), E->Loc);
      unify(infer(E->Args[1]), K, E->Args[1]->Loc);
      return V;
    }
    case Op::MSet: {
      TypePtr K = Type::varTy();
      TypePtr V = Type::varTy();
      TypePtr M = Type::dictTy(K, V);
      unify(infer(E->Args[0]), M, E->Loc);
      unify(infer(E->Args[1]), K, E->Args[1]->Loc);
      unify(infer(E->Args[2]), V, E->Args[2]->Loc);
      return M;
    }
    case Op::MMap: {
      TypePtr K = Type::varTy();
      TypePtr V = Type::varTy();
      TypePtr V2 = Type::varTy();
      unify(infer(E->Args[0]), Type::arrowTy(V, V2), E->Args[0]->Loc);
      unify(infer(E->Args[1]), Type::dictTy(K, V), E->Args[1]->Loc);
      return Type::dictTy(K, V2);
    }
    case Op::MMapIte: {
      TypePtr K = Type::varTy();
      TypePtr V = Type::varTy();
      TypePtr V2 = Type::varTy();
      unify(infer(E->Args[0]), Type::arrowTy(K, Type::boolTy()),
            E->Args[0]->Loc);
      unify(infer(E->Args[1]), Type::arrowTy(V, V2), E->Args[1]->Loc);
      unify(infer(E->Args[2]), Type::arrowTy(V, V2), E->Args[2]->Loc);
      unify(infer(E->Args[3]), Type::dictTy(K, V), E->Args[3]->Loc);
      return Type::dictTy(K, V2);
    }
    case Op::MCombine: {
      TypePtr K = Type::varTy();
      TypePtr V1 = Type::varTy();
      TypePtr V2 = Type::varTy();
      TypePtr V3 = Type::varTy();
      unify(infer(E->Args[0]),
            Type::arrowTy(V1, Type::arrowTy(V2, V3)), E->Args[0]->Loc);
      unify(infer(E->Args[1]), Type::dictTy(K, V1), E->Args[1]->Loc);
      unify(infer(E->Args[2]), Type::dictTy(K, V2), E->Args[2]->Loc);
      return Type::dictTy(K, V3);
    }
    }
    nv_unreachable("covered switch");
  }

  /// Arithmetic/comparison operands must be integers, but their width may
  /// not be known yet (e.g. a combine lambda checked before unifying with
  /// the dict's value type). Defer the check; unresolved operands default
  /// to 32 bits at the end of the enclosing declaration.
  std::vector<std::pair<TypePtr, SourceLoc>> DeferredInts;

  void deferIntCheck(TypePtr T, SourceLoc Loc) {
    DeferredInts.emplace_back(std::move(T), Loc);
  }

  void flushDeferredInts() {
    for (auto &[T, Loc] : DeferredInts) {
      TypePtr R = resolve(T);
      if (R->Kind == TypeKind::Var)
        unify(R, Type::intTy(32), Loc);
      else if (R->Kind != TypeKind::Int)
        Diags.error(Loc, "arithmetic/comparison operands must be integers, "
                         "got " +
                             typeToString(R));
    }
    DeferredInts.clear();
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void checkDecl(const DeclPtr &D) {
    switch (D->Kind) {
    case DeclKind::Let: {
      TypePtr T = infer(D->Body);
      if (D->Ty) {
        // The surface annotation names the result after ParamCount arrows:
        // `let f x y : R = e` constrains f : 'a -> 'b -> R.
        TypePtr Expected = D->Ty;
        for (unsigned I = 0; I < D->ParamCount; ++I)
          Expected = Type::arrowTy(Type::varTy(), Expected);
        unify(T, Expected, D->Loc);
      }
      // Resolve pending integer-width defaults before generalizing so that
      // quantified variables cannot escape an int constraint.
      flushDeferredInts();
      bindScheme(D->Name, generalize(T));
      return;
    }
    case DeclKind::Symbolic: {
      TypePtr T = D->Ty ? D->Ty : Type::varTy();
      if (D->Body)
        unify(infer(D->Body), T, D->Loc);
      flushDeferredInts();
      TypePtr Z = zonk(T);
      if (!isConcreteType(Z))
        Diags.error(D->Loc, "symbolic '" + D->Name +
                                "' must have a concrete type, got " +
                                typeToString(Z));
      D->Ty = Z;
      bind(D->Name, Z);
      return;
    }
    case DeclKind::Require:
      unify(infer(D->Body), Type::boolTy(), D->Loc);
      flushDeferredInts();
      return;
    case DeclKind::TypeAlias:
    case DeclKind::Nodes:
      return;
    case DeclKind::Edges: {
      for (const auto &[U, V] : D->EdgeList)
        if (HasTopology && (U >= NumNodes || V >= NumNodes))
          Diags.error(D->Loc, "edge " + std::to_string(U) + "n=" +
                                  std::to_string(V) +
                                  "n references an undeclared node");
      return;
    }
    }
    nv_unreachable("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Zonking
  //===--------------------------------------------------------------------===//

  void zonkExpr(const ExprPtr &E) {
    forEachExpr(E, [](const ExprPtr &Sub) {
      if (Sub->Ty)
        Sub->Ty = zonk(Sub->Ty);
      if (Sub->Annot)
        Sub->Annot = zonk(Sub->Annot);
    });
  }
};

} // namespace

TypePtr nv::zonk(const TypePtr &RawT) {
  TypePtr T = resolve(RawT);
  if (!T || T->Elems.empty())
    return T;
  bool Changed = false;
  std::vector<TypePtr> NewElems;
  NewElems.reserve(T->Elems.size());
  for (const TypePtr &E : T->Elems) {
    TypePtr Z = zonk(E);
    Changed |= Z.get() != E.get();
    NewElems.push_back(Z);
  }
  if (!Changed)
    return T;
  auto Copy = std::make_shared<Type>(*T);
  Copy->Elems = std::move(NewElems);
  return Copy;
}

bool nv::typeCheck(Program &P, DiagnosticEngine &Diags) {
  return CheckerImpl(Diags).checkProgram(P);
}

TypePtr nv::typeCheckExpr(const ExprPtr &E, DiagnosticEngine &Diags) {
  return CheckerImpl(Diags).checkClosedExpr(E);
}
