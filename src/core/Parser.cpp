//===- Parser.cpp - NV parser ---------------------------------------------===//
//
// A recursive-descent parser for NV. Grammar sketch (see the paper's Fig. 6
// and the examples of Sec. 2):
//
//   program  := decl*
//   decl     := 'include' (ident | string)
//             | 'type' ident '=' type
//             | 'symbolic' ident ':' type ('=' expr)?
//             | 'require' expr
//             | 'let' 'nodes' '=' INT
//             | 'let' 'edges' '=' '{' (NODE '=' NODE (';' NODE '=' NODE)*)? '}'
//             | 'let' ident param* (':' type)? '=' expr
//   expr     := let-in | fun | if | match | orExpr
//   orExpr   := andExpr ('||' andExpr)*
//   andExpr  := cmpExpr ('&&' cmpExpr)*
//   cmpExpr  := addExpr (('='|'<>'|'<'|'<='|'>'|'>=') addExpr)?
//   addExpr  := appExpr (('+'|'-') appExpr)*
//   appExpr  := unary+                       (left-assoc application)
//   unary    := 'Some' unary | '!' unary | postfix
//   postfix  := atom ('.' field | '[' e ']' | '[' e ':=' e ']')*
//   atom     := literal | ident | 'None' | '(' expr (',' expr)* ')' | brace
//   brace    := '{' '}'                      (empty set)
//             | '{' l '=' e (';' l '=' e)* '}'      (record)
//             | '{' e 'with' l '=' e (';' ...)* '}' (record update)
//             | '{' e (',' e)* '}'                  (set literal)
//
// `map f m`, `mapIte p f g m`, `combine f m1 m2`, `createDict d` are
// keyword-headed primitive applications and must be fully applied.
//
//===----------------------------------------------------------------------===//

#include "core/Parser.h"

#include "core/Lexer.h"
#include "core/Stdlib.h"

#include <algorithm>
#include <set>

using namespace nv;

namespace {

bool isReservedIdent(const std::string &S) {
  static const std::set<std::string> Reserved = {
      "let",   "in",    "fun",      "if",      "then",       "else",
      "match", "with",  "type",     "symbolic", "require",   "include",
      "true",  "false", "None",     "Some",     "createDict", "map",
      "mapIte", "combine"};
  return Reserved.count(S) > 0;
}

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, DiagnosticEngine &Diags,
             const ParseOptions &Opts)
      : Toks(std::move(Toks)), Diags(Diags), Opts(Opts) {}

  std::optional<Program> parseProgramToplevel() {
    Program P;
    while (!at(TokKind::Eof)) {
      if (!parseDecl(P.Decls))
        return std::nullopt;
    }
    if (Diags.hasErrors())
      return std::nullopt;
    return P;
  }

  ExprPtr parseOneExpr() {
    ExprPtr E = parseExpr();
    if (!at(TokKind::Eof))
      error("expected end of input, found " + cur().describe());
    if (Diags.hasErrors())
      return nullptr;
    return E;
  }

  TypePtr parseOneType() {
    TypePtr T = parseType();
    if (!at(TokKind::Eof))
      error("expected end of input, found " + cur().describe());
    if (Diags.hasErrors())
      return nullptr;
    return T;
  }

private:
  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  const ParseOptions &Opts;
  size_t Pos = 0;
  std::vector<std::pair<std::string, TypePtr>> Aliases;
  std::set<std::string> Included;

  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Off = 1) const {
    size_t I = Pos + Off;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atIdent(const char *S) const { return cur().isIdent(S); }

  Token take() {
    Token T = cur();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  void error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }

  bool expect(TokKind K, const char *What) {
    if (at(K)) {
      take();
      return true;
    }
    error(std::string("expected ") + What + ", found " + cur().describe());
    return false;
  }

  std::string expectIdent(const char *What) {
    if (at(TokKind::Ident) && !isReservedIdent(cur().Text))
      return take().Text;
    error(std::string("expected ") + What + ", found " + cur().describe());
    return "";
  }

  /// Skips to the next plausible declaration start for error recovery.
  void recoverToDecl() {
    while (!at(TokKind::Eof)) {
      if (atIdent("let") || atIdent("type") || atIdent("symbolic") ||
          atIdent("require") || atIdent("include"))
        return;
      take();
    }
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  TypePtr lookupAlias(const std::string &Name) const {
    for (auto It = Aliases.rbegin(); It != Aliases.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

  /// Recognizes int, int8, int32, ... spellings.
  static std::optional<unsigned> intTypeWidth(const std::string &S) {
    if (S == "int")
      return 32;
    if (S.size() > 3 && S.compare(0, 3, "int") == 0) {
      unsigned W = 0;
      for (size_t I = 3; I < S.size(); ++I) {
        if (!std::isdigit(static_cast<unsigned char>(S[I])))
          return std::nullopt;
        W = W * 10 + static_cast<unsigned>(S[I] - '0');
      }
      if (W >= 1 && W <= 64)
        return W;
    }
    return std::nullopt;
  }

  TypePtr parseType() {
    TypePtr L = parseTypeAtom();
    if (!L)
      return nullptr;
    if (at(TokKind::Arrow)) {
      take();
      TypePtr R = parseType();
      if (!R)
        return nullptr;
      return Type::arrowTy(L, R);
    }
    return L;
  }

  TypePtr parseTypeAtom() {
    SourceLoc Loc = cur().Loc;
    if (at(TokKind::Ident)) {
      std::string Name = cur().Text;
      if (Name == "bool") {
        take();
        return Type::boolTy();
      }
      if (auto W = intTypeWidth(Name)) {
        take();
        return Type::intTy(*W);
      }
      if (Name == "node") {
        take();
        return Type::nodeTy();
      }
      if (Name == "edge") {
        take();
        return Type::edgeTy();
      }
      if (Name == "option") {
        take();
        if (!expect(TokKind::LBracket, "'[' after option"))
          return nullptr;
        TypePtr E = parseType();
        if (!E || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        return Type::optionTy(E);
      }
      if (Name == "set") {
        take();
        if (!expect(TokKind::LBracket, "'[' after set"))
          return nullptr;
        TypePtr K = parseType();
        if (!K || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        return Type::setTy(K);
      }
      if (Name == "dict") {
        take();
        if (!expect(TokKind::LBracket, "'[' after dict"))
          return nullptr;
        TypePtr K = parseType();
        if (!K || !expect(TokKind::Comma, "','"))
          return nullptr;
        TypePtr V = parseType();
        if (!V || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        return Type::dictTy(K, V);
      }
      if (TypePtr Alias = lookupAlias(Name)) {
        take();
        return Alias;
      }
      Diags.error(Loc, "unknown type name '" + Name + "'");
      take();
      return nullptr;
    }
    if (at(TokKind::LParen)) {
      take();
      std::vector<TypePtr> Elems;
      TypePtr T = parseType();
      if (!T)
        return nullptr;
      Elems.push_back(T);
      while (at(TokKind::Comma)) {
        take();
        TypePtr N = parseType();
        if (!N)
          return nullptr;
        Elems.push_back(N);
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      if (Elems.size() == 1)
        return Elems[0];
      return Type::tupleTy(std::move(Elems));
    }
    if (at(TokKind::LBrace)) {
      take();
      std::vector<std::string> Labels;
      std::vector<TypePtr> Elems;
      for (;;) {
        std::string L = expectIdent("record field label");
        if (L.empty())
          return nullptr;
        if (!expect(TokKind::Colon, "':' in record type"))
          return nullptr;
        TypePtr T = parseType();
        if (!T)
          return nullptr;
        Labels.push_back(L);
        Elems.push_back(T);
        if (at(TokKind::Semi)) {
          take();
          if (at(TokKind::RBrace))
            break; // trailing semicolon
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBrace, "'}'"))
        return nullptr;
      sortRecord(Labels, Elems);
      return Type::recordTy(std::move(Labels), std::move(Elems));
    }
    error("expected a type, found " + cur().describe());
    return nullptr;
  }

  template <typename T>
  static void sortRecord(std::vector<std::string> &Labels,
                         std::vector<T> &Elems) {
    std::vector<size_t> Idx(Labels.size());
    for (size_t I = 0; I < Idx.size(); ++I)
      Idx[I] = I;
    std::sort(Idx.begin(), Idx.end(), [&](size_t A, size_t B) {
      return Labels[A] < Labels[B];
    });
    std::vector<std::string> L2;
    std::vector<T> E2;
    for (size_t I : Idx) {
      L2.push_back(Labels[I]);
      E2.push_back(Elems[I]);
    }
    Labels = std::move(L2);
    Elems = std::move(E2);
  }

  //===--------------------------------------------------------------------===//
  // Patterns
  //===--------------------------------------------------------------------===//

  PatternPtr parsePattern() {
    PatternPtr P = parsePatternNoComma();
    if (!P)
      return nullptr;
    if (!at(TokKind::Comma))
      return P;
    std::vector<PatternPtr> Elems = {P};
    while (at(TokKind::Comma)) {
      take();
      PatternPtr Q = parsePatternNoComma();
      if (!Q)
        return nullptr;
      Elems.push_back(Q);
    }
    return Pattern::tuple(std::move(Elems), Elems[0]->Loc);
  }

  PatternPtr parsePatternNoComma() {
    SourceLoc Loc = cur().Loc;
    if (atIdent("Some")) {
      take();
      PatternPtr Inner = parsePatternNoComma();
      if (!Inner)
        return nullptr;
      return Pattern::some(Inner, Loc);
    }
    return parsePatternAtom();
  }

  PatternPtr parsePatternAtom() {
    SourceLoc Loc = cur().Loc;
    if (at(TokKind::Underscore)) {
      take();
      return Pattern::wild(Loc);
    }
    if (atIdent("None")) {
      take();
      return Pattern::none(Loc);
    }
    if (atIdent("true") || atIdent("false")) {
      bool B = take().Text == "true";
      return Pattern::lit(Literal::boolLit(B), Loc);
    }
    if (at(TokKind::IntLit)) {
      Token T = take();
      return Pattern::lit(Literal::intLit(T.IntVal, T.Width), Loc);
    }
    if (at(TokKind::NodeLit)) {
      Token T = take();
      return Pattern::lit(Literal::nodeLit(static_cast<uint32_t>(T.IntVal)),
                          Loc);
    }
    if (at(TokKind::Ident) && !isReservedIdent(cur().Text))
      return Pattern::var(take().Text, Loc);
    if (at(TokKind::LParen)) {
      take();
      PatternPtr P = parsePattern();
      if (!P || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return P;
    }
    if (at(TokKind::LBrace)) {
      take();
      std::vector<std::string> Labels;
      std::vector<PatternPtr> Elems;
      for (;;) {
        std::string L = expectIdent("record field label");
        if (L.empty())
          return nullptr;
        if (!expect(TokKind::Eq, "'=' in record pattern"))
          return nullptr;
        PatternPtr P = parsePatternNoComma();
        if (!P)
          return nullptr;
        Labels.push_back(L);
        Elems.push_back(P);
        if (at(TokKind::Semi)) {
          take();
          if (at(TokKind::RBrace))
            break;
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBrace, "'}'"))
        return nullptr;
      sortRecord(Labels, Elems);
      return Pattern::record(std::move(Labels), std::move(Elems), Loc);
    }
    error("expected a pattern, found " + cur().describe());
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ExprPtr parseExpr() {
    SourceLoc Loc = cur().Loc;
    if (atIdent("let"))
      return parseLetIn();
    if (atIdent("fun"))
      return parseFun();
    if (atIdent("if")) {
      take();
      ExprPtr C = parseExpr();
      if (!C)
        return nullptr;
      if (!atIdent("then")) {
        error("expected 'then'");
        return nullptr;
      }
      take();
      ExprPtr T = parseExpr();
      if (!T)
        return nullptr;
      if (!atIdent("else")) {
        error("expected 'else'");
        return nullptr;
      }
      take();
      ExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      return Expr::iff(C, T, E, Loc);
    }
    if (atIdent("match"))
      return parseMatch();
    return parseOr();
  }

  ExprPtr parseLetIn() {
    SourceLoc Loc = take().Loc; // 'let'
    // Either `let x ... = e in e` or a destructuring `let (p, q) = e in e`.
    if (at(TokKind::LParen) &&
        !(peek().Kind == TokKind::Ident && peek(2).Kind == TokKind::Colon)) {
      // Destructuring let: sugar for a single-case match.
      PatternPtr P = parsePatternAtom();
      if (!P)
        return nullptr;
      if (!expect(TokKind::Eq, "'='"))
        return nullptr;
      ExprPtr Init = parseExpr();
      if (!Init)
        return nullptr;
      if (!atIdent("in")) {
        error("expected 'in'");
        return nullptr;
      }
      take();
      ExprPtr Body = parseExpr();
      if (!Body)
        return nullptr;
      return Expr::match(Init, {{P, Body}}, Loc);
    }
    std::string Name = expectIdent("binder");
    if (Name.empty())
      return nullptr;
    // Parameters make this a local function definition.
    std::vector<std::pair<std::string, TypePtr>> Params;
    if (!parseParams(Params))
      return nullptr;
    TypePtr Annot;
    if (at(TokKind::Colon)) {
      take();
      Annot = parseType();
      if (!Annot)
        return nullptr;
    }
    if (!expect(TokKind::Eq, "'='"))
      return nullptr;
    ExprPtr Init = parseExpr();
    if (!Init)
      return nullptr;
    Init = wrapParams(Params, Init);
    if (!atIdent("in")) {
      error("expected 'in'");
      return nullptr;
    }
    take();
    ExprPtr Body = parseExpr();
    if (!Body)
      return nullptr;
    return Expr::let(Name, Init, Body, Params.empty() ? Annot : nullptr, Loc);
  }

  ExprPtr parseFun() {
    SourceLoc Loc = take().Loc; // 'fun'
    std::vector<std::pair<std::string, TypePtr>> Params;
    if (!parseParams(Params))
      return nullptr;
    if (Params.empty()) {
      error("expected at least one parameter after 'fun'");
      return nullptr;
    }
    if (!expect(TokKind::Arrow, "'->'"))
      return nullptr;
    ExprPtr Body = parseExpr();
    if (!Body)
      return nullptr;
    return wrapParams(Params, Body, Loc);
  }

  /// Parses zero or more `x` / `(x : ty)` / `(x y : ty)` parameters.
  bool parseParams(std::vector<std::pair<std::string, TypePtr>> &Out) {
    for (;;) {
      if (at(TokKind::Ident) && !isReservedIdent(cur().Text) &&
          (peek().Kind == TokKind::Ident || peek().Kind == TokKind::Colon ||
           peek().Kind == TokKind::Arrow || peek().Kind == TokKind::Eq ||
           peek().Kind == TokKind::LParen)) {
        // A bare parameter name: only in binder position (decl/fun), where
        // the caller knows an '=' or '->' terminates the list.
        Out.emplace_back(take().Text, nullptr);
        continue;
      }
      if (at(TokKind::LParen) && peek().Kind == TokKind::Ident &&
          !isReservedIdent(peek().Text) &&
          (peek(2).Kind == TokKind::Colon || peek(2).Kind == TokKind::Ident)) {
        take(); // '('
        std::vector<std::string> Names;
        while (at(TokKind::Ident) && !isReservedIdent(cur().Text))
          Names.push_back(take().Text);
        TypePtr T;
        if (at(TokKind::Colon)) {
          take();
          T = parseType();
          if (!T)
            return false;
        }
        if (!expect(TokKind::RParen, "')'"))
          return false;
        for (const std::string &N : Names)
          Out.emplace_back(N, T);
        continue;
      }
      return true;
    }
  }

  static ExprPtr wrapParams(const std::vector<std::pair<std::string, TypePtr>> &Params,
                            ExprPtr Body, SourceLoc Loc = {}) {
    for (auto It = Params.rbegin(); It != Params.rend(); ++It)
      Body = Expr::fun(It->first, Body, It->second, Loc);
    return Body;
  }

  ExprPtr parseMatch() {
    SourceLoc Loc = take().Loc; // 'match'
    // Scrutinee may be a comma list: `match x, y with`.
    std::vector<ExprPtr> Scruts;
    ExprPtr S = parseOr();
    if (!S)
      return nullptr;
    Scruts.push_back(S);
    while (at(TokKind::Comma)) {
      take();
      ExprPtr N = parseOr();
      if (!N)
        return nullptr;
      Scruts.push_back(N);
    }
    if (!atIdent("with")) {
      error("expected 'with'");
      return nullptr;
    }
    take();
    ExprPtr Scrut =
        Scruts.size() == 1 ? Scruts[0] : Expr::tuple(std::move(Scruts), Loc);
    std::vector<MatchCase> Cases;
    if (at(TokKind::Bar))
      take();
    for (;;) {
      PatternPtr P = parsePattern();
      if (!P)
        return nullptr;
      if (!expect(TokKind::Arrow, "'->'"))
        return nullptr;
      ExprPtr Body = parseExpr();
      if (!Body)
        return nullptr;
      Cases.push_back({P, Body});
      if (at(TokKind::Bar)) {
        take();
        continue;
      }
      break;
    }
    return Expr::match(Scrut, std::move(Cases), Loc);
  }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    if (!L)
      return nullptr;
    while (at(TokKind::OrOr)) {
      SourceLoc Loc = take().Loc;
      ExprPtr R = parseAnd();
      if (!R)
        return nullptr;
      L = Expr::oper(Op::Or, {L, R}, Loc);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    if (!L)
      return nullptr;
    while (at(TokKind::AndAnd)) {
      SourceLoc Loc = take().Loc;
      ExprPtr R = parseCmp();
      if (!R)
        return nullptr;
      L = Expr::oper(Op::And, {L, R}, Loc);
    }
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    Op O;
    switch (cur().Kind) {
    case TokKind::Eq:
      O = Op::Eq;
      break;
    case TokKind::Neq:
      O = Op::Neq;
      break;
    case TokKind::Lt:
      O = Op::Lt;
      break;
    case TokKind::Le:
      O = Op::Le;
      break;
    case TokKind::Gt:
      O = Op::Gt;
      break;
    case TokKind::Ge:
      O = Op::Ge;
      break;
    default:
      return L;
    }
    SourceLoc Loc = take().Loc;
    ExprPtr R = parseAdd();
    if (!R)
      return nullptr;
    return Expr::oper(O, {L, R}, Loc);
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseApp();
    if (!L)
      return nullptr;
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      Op O = at(TokKind::Plus) ? Op::Add : Op::Sub;
      SourceLoc Loc = take().Loc;
      ExprPtr R = parseApp();
      if (!R)
        return nullptr;
      L = Expr::oper(O, {L, R}, Loc);
    }
    return L;
  }

  /// True when the current token can begin an application operand.
  bool startsOperand() const {
    switch (cur().Kind) {
    case TokKind::IntLit:
    case TokKind::NodeLit:
    case TokKind::LParen:
    case TokKind::LBrace:
    case TokKind::Bang:
      return true;
    case TokKind::Ident: {
      const std::string &S = cur().Text;
      if (S == "true" || S == "false" || S == "None" || S == "Some")
        return true;
      return !isReservedIdent(S);
    }
    default:
      return false;
    }
  }

  ExprPtr parseApp() {
    SourceLoc Loc = cur().Loc;
    // Keyword-headed primitives (must be fully applied).
    if (atIdent("createDict"))
      return parsePrimitive(Op::MCreate, Loc);
    if (atIdent("map"))
      return parsePrimitive(Op::MMap, Loc);
    if (atIdent("mapIte"))
      return parsePrimitive(Op::MMapIte, Loc);
    if (atIdent("combine"))
      return parsePrimitive(Op::MCombine, Loc);

    ExprPtr Head = parseUnary();
    if (!Head)
      return nullptr;
    while (startsOperand()) {
      ExprPtr Arg = parseUnary();
      if (!Arg)
        return nullptr;
      Head = Expr::app(Head, Arg, Loc);
    }
    return Head;
  }

  ExprPtr parsePrimitive(Op O, SourceLoc Loc) {
    std::string Name = take().Text;
    std::vector<ExprPtr> Args;
    for (unsigned I = 0, N = opArity(O); I < N; ++I) {
      if (!startsOperand()) {
        error("primitive '" + Name + "' expects " + std::to_string(N) +
              " arguments");
        return nullptr;
      }
      ExprPtr A = parseUnary();
      if (!A)
        return nullptr;
      Args.push_back(A);
    }
    // Surface order matches Fig. 7: map f m, mapIte p f g m, combine f a b.
    // Internal operand order for Oper nodes is identical.
    return Expr::oper(O, std::move(Args), Loc);
  }

  ExprPtr parseUnary() {
    SourceLoc Loc = cur().Loc;
    if (atIdent("Some")) {
      take();
      ExprPtr Inner = parseUnary();
      if (!Inner)
        return nullptr;
      return Expr::some(Inner, Loc);
    }
    if (at(TokKind::Bang)) {
      take();
      ExprPtr Inner = parseUnary();
      if (!Inner)
        return nullptr;
      return Expr::oper(Op::Not, {Inner}, Loc);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parseAtom();
    if (!E)
      return nullptr;
    for (;;) {
      if (at(TokKind::Dot)) {
        SourceLoc Loc = take().Loc;
        if (at(TokKind::IntLit)) {
          Token T = take();
          E = Expr::proj(E, static_cast<unsigned>(T.IntVal), Loc);
          continue;
        }
        std::string L = expectIdent("field label");
        if (L.empty())
          return nullptr;
        E = Expr::field(E, L, Loc);
        continue;
      }
      if (at(TokKind::LBracket)) {
        SourceLoc Loc = take().Loc;
        ExprPtr K = parseExpr();
        if (!K)
          return nullptr;
        if (at(TokKind::Assign)) {
          take();
          ExprPtr V = parseExpr();
          if (!V)
            return nullptr;
          if (!expect(TokKind::RBracket, "']'"))
            return nullptr;
          E = Expr::oper(Op::MSet, {E, K, V}, Loc);
          continue;
        }
        if (!expect(TokKind::RBracket, "']'"))
          return nullptr;
        E = Expr::oper(Op::MGet, {E, K}, Loc);
        continue;
      }
      return E;
    }
  }

  ExprPtr parseAtom() {
    SourceLoc Loc = cur().Loc;
    if (at(TokKind::IntLit)) {
      Token T = take();
      return Expr::intConst(T.IntVal, T.Width, Loc);
    }
    if (at(TokKind::NodeLit)) {
      Token T = take();
      return Expr::nodeConst(static_cast<uint32_t>(T.IntVal), Loc);
    }
    if (atIdent("true") || atIdent("false"))
      return Expr::boolConst(take().Text == "true", Loc);
    if (atIdent("None")) {
      take();
      return Expr::none(Loc);
    }
    if (at(TokKind::Ident) && !isReservedIdent(cur().Text))
      return Expr::var(take().Text, Loc);
    if (at(TokKind::LParen)) {
      take();
      ExprPtr E = parseExpr();
      if (!E)
        return nullptr;
      if (at(TokKind::Comma)) {
        std::vector<ExprPtr> Elems = {E};
        while (at(TokKind::Comma)) {
          take();
          ExprPtr N = parseExpr();
          if (!N)
            return nullptr;
          Elems.push_back(N);
        }
        if (!expect(TokKind::RParen, "')'"))
          return nullptr;
        return Expr::tuple(std::move(Elems), Loc);
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (at(TokKind::LBrace))
      return parseBrace();
    error("expected an expression, found " + cur().describe());
    return nullptr;
  }

  ExprPtr parseBrace() {
    SourceLoc Loc = take().Loc; // '{'
    // Empty set.
    if (at(TokKind::RBrace)) {
      take();
      return Expr::oper(Op::MCreate, {Expr::boolConst(false, Loc)}, Loc);
    }
    // Record literal: starts with `label =` (and not `label with`).
    if (at(TokKind::Ident) && !isReservedIdent(cur().Text) &&
        peek().Kind == TokKind::Eq) {
      std::vector<std::string> Labels;
      std::vector<ExprPtr> Elems;
      for (;;) {
        std::string L = expectIdent("record field label");
        if (L.empty())
          return nullptr;
        if (!expect(TokKind::Eq, "'='"))
          return nullptr;
        ExprPtr V = parseExpr();
        if (!V)
          return nullptr;
        Labels.push_back(L);
        Elems.push_back(V);
        if (at(TokKind::Semi)) {
          take();
          if (at(TokKind::RBrace))
            break;
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBrace, "'}'"))
        return nullptr;
      sortRecord(Labels, Elems);
      return Expr::record(std::move(Labels), std::move(Elems), Loc);
    }
    // Either a record update `{e with ...}` or a set literal `{e, ...}`.
    ExprPtr First = parseExpr();
    if (!First)
      return nullptr;
    if (atIdent("with")) {
      take();
      std::vector<std::string> Labels;
      std::vector<ExprPtr> Elems;
      for (;;) {
        std::string L = expectIdent("record field label");
        if (L.empty())
          return nullptr;
        if (!expect(TokKind::Eq, "'='"))
          return nullptr;
        ExprPtr V = parseExpr();
        if (!V)
          return nullptr;
        Labels.push_back(L);
        Elems.push_back(V);
        if (at(TokKind::Semi)) {
          take();
          if (at(TokKind::RBrace))
            break;
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBrace, "'}'"))
        return nullptr;
      sortRecord(Labels, Elems);
      return Expr::recordUpdate(First, std::move(Labels), std::move(Elems),
                                Loc);
    }
    // Set literal: desugars to createDict false + per-element set-to-true.
    std::vector<ExprPtr> Elems = {First};
    while (at(TokKind::Comma)) {
      take();
      ExprPtr N = parseExpr();
      if (!N)
        return nullptr;
      Elems.push_back(N);
    }
    if (!expect(TokKind::RBrace, "'}'"))
      return nullptr;
    ExprPtr S = Expr::oper(Op::MCreate, {Expr::boolConst(false, Loc)}, Loc);
    for (ExprPtr &K : Elems)
      S = Expr::oper(Op::MSet, {S, K, Expr::boolConst(true, Loc)}, Loc);
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  bool parseDecl(std::vector<DeclPtr> &Out) {
    SourceLoc Loc = cur().Loc;
    if (atIdent("include")) {
      take();
      std::string Name;
      if (at(TokKind::String))
        Name = take().Text;
      else
        Name = expectIdent("include name");
      if (Name.empty()) {
        recoverToDecl();
        return !Diags.hasErrors();
      }
      return spliceInclude(Name, Loc, Out);
    }
    if (atIdent("type")) {
      take();
      std::string Name = expectIdent("type name");
      if (Name.empty() || !expect(TokKind::Eq, "'='")) {
        recoverToDecl();
        return false;
      }
      TypePtr T = parseType();
      if (!T) {
        recoverToDecl();
        return false;
      }
      Aliases.emplace_back(Name, T);
      Out.push_back(Decl::typeAlias(Name, T, Loc));
      return true;
    }
    if (atIdent("symbolic")) {
      take();
      std::string Name = expectIdent("symbolic name");
      if (Name.empty()) {
        recoverToDecl();
        return false;
      }
      TypePtr T;
      ExprPtr Default;
      if (at(TokKind::Colon)) {
        take();
        T = parseType();
        if (!T) {
          recoverToDecl();
          return false;
        }
      }
      if (at(TokKind::Eq)) {
        take();
        Default = parseExpr();
        if (!Default) {
          recoverToDecl();
          return false;
        }
      }
      if (!T && !Default) {
        Diags.error(Loc, "symbolic '" + Name +
                             "' needs a type annotation or a default value");
        return false;
      }
      Out.push_back(Decl::symbolicDecl(Name, T, Default, Loc));
      return true;
    }
    if (atIdent("require")) {
      take();
      ExprPtr E = parseExpr();
      if (!E) {
        recoverToDecl();
        return false;
      }
      Out.push_back(Decl::requireDecl(E, Loc));
      return true;
    }
    if (atIdent("let")) {
      take();
      // `let nodes = N`
      if (atIdent("nodes")) {
        take();
        if (!expect(TokKind::Eq, "'='"))
          return false;
        if (!at(TokKind::IntLit)) {
          error("expected a node count");
          return false;
        }
        Token T = take();
        Out.push_back(Decl::nodesDecl(static_cast<uint32_t>(T.IntVal), Loc));
        return true;
      }
      // `let edges = { 0n=1n; ... }`
      if (atIdent("edges")) {
        take();
        if (!expect(TokKind::Eq, "'='") || !expect(TokKind::LBrace, "'{'"))
          return false;
        std::vector<std::pair<uint32_t, uint32_t>> Edges;
        while (!at(TokKind::RBrace)) {
          if (!at(TokKind::NodeLit)) {
            error("expected a node literal in edge list");
            return false;
          }
          uint32_t U = static_cast<uint32_t>(take().IntVal);
          if (!expect(TokKind::Eq, "'=' in edge"))
            return false;
          if (!at(TokKind::NodeLit)) {
            error("expected a node literal in edge list");
            return false;
          }
          uint32_t V = static_cast<uint32_t>(take().IntVal);
          Edges.emplace_back(U, V);
          if (at(TokKind::Semi)) {
            take();
            continue;
          }
          break;
        }
        if (!expect(TokKind::RBrace, "'}'"))
          return false;
        Out.push_back(Decl::edgesDecl(std::move(Edges), Loc));
        return true;
      }
      std::string Name = expectIdent("binder");
      if (Name.empty()) {
        recoverToDecl();
        return false;
      }
      std::vector<std::pair<std::string, TypePtr>> Params;
      if (!parseParams(Params)) {
        recoverToDecl();
        return false;
      }
      TypePtr Annot;
      if (at(TokKind::Colon)) {
        take();
        Annot = parseType();
        if (!Annot) {
          recoverToDecl();
          return false;
        }
      }
      if (!expect(TokKind::Eq, "'='")) {
        recoverToDecl();
        return false;
      }
      ExprPtr Body = parseExpr();
      if (!Body) {
        recoverToDecl();
        return false;
      }
      Body = wrapParams(Params, Body, Loc);
      DeclPtr D = Decl::letDecl(Name, Body, Loc);
      D->Ty = Annot;
      D->ParamCount = static_cast<unsigned>(Params.size());
      Out.push_back(D);
      return true;
    }
    error("expected a declaration, found " + cur().describe());
    recoverToDecl();
    if (at(TokKind::Eof))
      return false;
    take();
    return false;
  }

  bool spliceInclude(const std::string &Name, SourceLoc Loc,
                     std::vector<DeclPtr> &Out) {
    if (Included.count(Name))
      return true; // idempotent includes
    Included.insert(Name);
    std::optional<std::string> Src;
    if (Opts.Resolver)
      Src = Opts.Resolver(Name);
    if (!Src)
      Src = builtinInclude(Name);
    if (!Src) {
      Diags.error(Loc, "cannot resolve include '" + Name + "'");
      return false;
    }
    std::vector<Token> Inner = lex(*Src, Diags);
    if (Diags.hasErrors())
      return false;
    // Splice: parse the included token stream with the same alias scope.
    std::vector<Token> Saved = std::move(Toks);
    size_t SavedPos = Pos;
    Toks = std::move(Inner);
    Pos = 0;
    bool Ok = true;
    while (!at(TokKind::Eof) && Ok)
      Ok = parseDecl(Out);
    Toks = std::move(Saved);
    Pos = SavedPos;
    return Ok && !Diags.hasErrors();
  }
};

} // namespace

std::optional<Program> nv::parseProgram(const std::string &Source,
                                        DiagnosticEngine &Diags,
                                        const ParseOptions &Opts) {
  std::vector<Token> Toks = lex(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return ParserImpl(std::move(Toks), Diags, Opts).parseProgramToplevel();
}

ExprPtr nv::parseExprString(const std::string &Source,
                            DiagnosticEngine &Diags) {
  std::vector<Token> Toks = lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  ParseOptions Opts;
  return ParserImpl(std::move(Toks), Diags, Opts).parseOneExpr();
}

TypePtr nv::parseTypeString(const std::string &Source,
                            DiagnosticEngine &Diags) {
  std::vector<Token> Toks = lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  ParseOptions Opts;
  return ParserImpl(std::move(Toks), Diags, Opts).parseOneType();
}
