//===- Ast.h - NV abstract syntax -------------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NV abstract syntax of Fig. 6: expressions, patterns, declarations and
/// whole programs. Nodes are kind-tagged (no RTTI) and shared via
/// shared_ptr so NV-to-NV transforms can rewrite functionally while sharing
/// unchanged subtrees.
///
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_AST_H
#define NV_CORE_AST_H

#include "core/Type.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nv {

//===----------------------------------------------------------------------===//
// Literals
//===----------------------------------------------------------------------===//

enum class LiteralKind : uint8_t { Bool, Int, Node, Edge };

/// A first-order constant embedded in the syntax: true/false, sized integer
/// (e.g. 5u8), node (e.g. 3n), or edge (a directed node pair).
struct Literal {
  LiteralKind Kind = LiteralKind::Bool;
  bool BoolVal = false;
  uint64_t IntVal = 0;   ///< Int: value, already truncated to Width bits.
  unsigned Width = 32;   ///< Int: bit width.
  uint32_t NodeVal = 0;  ///< Node: id; Edge: source id.
  uint32_t NodeVal2 = 0; ///< Edge: target id.

  static Literal boolLit(bool B);
  static Literal intLit(uint64_t V, unsigned Width = 32);
  static Literal nodeLit(uint32_t N);
  static Literal edgeLit(uint32_t U, uint32_t V);

  TypePtr type() const;
  bool equals(const Literal &O) const;
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

/// Primitive operators, including the dictionary operations of Fig. 7.
enum class Op : uint8_t {
  // Boolean.
  And, // e1 && e2
  Or,  // e1 || e2
  Not, // !e
  // Polymorphic structural (in)equality on non-function values.
  Eq,
  Neq,
  // Sized-integer arithmetic (wrap-around) and comparisons.
  Add,
  Sub,
  Lt,
  Le,
  Gt,
  Ge,
  // Dictionary operations (Fig. 7). Args are listed in NV argument order:
  //   MCreate  default                 : createDict d
  //   MGet     map, key                : m[k]
  //   MSet     map, key, value         : m[k := v]
  //   MMap     fn, map                 : map f m
  //   MMapIte  pred, fnThen, fnElse, m : mapIte p f g m
  //   MCombine fn, map1, map2          : combine f m1 m2
  MCreate,
  MGet,
  MSet,
  MMap,
  MMapIte,
  MCombine,
};

/// Number of operands each Op expects.
unsigned opArity(Op O);
/// Surface spelling (for printing / diagnostics).
std::string opToString(Op O);
/// True for MCreate..MCombine.
bool isMapOp(Op O);

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

enum class PatternKind : uint8_t {
  Wild,   // _
  Var,    // x
  Lit,    // true / 3 / 2n
  None,   // None
  Some,   // Some p
  Tuple,  // (p1, ..., pn); also destructures edge values as (node, node)
  Record, // { l1 = p1; ...; ln = pn }
};

struct Pattern;
using PatternPtr = std::shared_ptr<Pattern>;

struct Pattern {
  PatternKind Kind = PatternKind::Wild;
  SourceLoc Loc;
  std::string Name;                ///< Var binder.
  Literal Lit;                     ///< Lit payload.
  std::vector<PatternPtr> Elems;   ///< Some (1), Tuple, Record children.
  std::vector<std::string> Labels; ///< Record, sorted, parallel to Elems.

  static PatternPtr wild(SourceLoc Loc = {});
  static PatternPtr var(std::string Name, SourceLoc Loc = {});
  static PatternPtr lit(Literal L, SourceLoc Loc = {});
  static PatternPtr none(SourceLoc Loc = {});
  static PatternPtr some(PatternPtr P, SourceLoc Loc = {});
  static PatternPtr tuple(std::vector<PatternPtr> Ps, SourceLoc Loc = {});
  static PatternPtr record(std::vector<std::string> Labels,
                           std::vector<PatternPtr> Ps, SourceLoc Loc = {});

  /// Collects the variables bound by this pattern, in left-to-right order.
  void boundVars(std::vector<std::string> &Out) const;
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  Const,        // literal
  Var,          // x
  Let,          // let x = e1 in e2
  Fun,          // fun (x : ty) -> e      (curried; multi-param is sugar)
  App,          // e1 e2
  If,           // if e1 then e2 else e3
  Match,        // match e with | p1 -> e1 ...
  Oper,         // primitive operator application (full arity)
  Tuple,        // (e1, ..., en)
  Proj,         // e.N  -- tuple projection by index (post-desugaring)
  Record,       // { l1 = e1; ...; ln = en }
  RecordUpdate, // { e with l1 = e1; ... }
  Field,        // e.l  -- record field access
  Some,         // Some e
  None,         // None
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct MatchCase {
  PatternPtr Pat;
  ExprPtr Body;
};

/// A single NV expression node. One struct covers all kinds; unused fields
/// stay empty. Children live in Args with kind-specific layout:
///   Let: {Init, Body}  Fun: {Body}  App: {Fn, Arg}  If: {Cond, Then, Else}
///   Match: {Scrutinee} (cases in Cases)  Oper: operands in NV order
///   Tuple/Record: components  RecordUpdate: {Base, new field values}
///   Proj/Field/Some: {Operand}
struct Expr {
  ExprKind Kind = ExprKind::None;
  SourceLoc Loc;
  TypePtr Ty; ///< Filled in by the type checker.

  Literal Lit;                     ///< Const.
  std::string Name;                ///< Var / Let binder / Fun param / Field.
  Op OpCode = Op::And;             ///< Oper.
  std::vector<ExprPtr> Args;       ///< Children (see layout above).
  std::vector<MatchCase> Cases;    ///< Match.
  std::vector<std::string> Labels; ///< Record / RecordUpdate, sorted.
  unsigned Index = 0;              ///< Proj.
  TypePtr Annot;                   ///< Optional annotation (Fun/Let binder).

  /// Lazily computed free-variable set (see freeVarsOf in NvContext.h).
  /// Stored on the node so the cache cannot outlive the AST.
  mutable std::shared_ptr<const std::vector<std::string>> CachedFreeVars;

  // Factories.
  static ExprPtr constant(Literal L, SourceLoc Loc = {});
  static ExprPtr boolConst(bool B, SourceLoc Loc = {});
  static ExprPtr intConst(uint64_t V, unsigned Width = 32, SourceLoc Loc = {});
  static ExprPtr nodeConst(uint32_t N, SourceLoc Loc = {});
  static ExprPtr edgeConst(uint32_t U, uint32_t V, SourceLoc Loc = {});
  static ExprPtr var(std::string Name, SourceLoc Loc = {});
  static ExprPtr let(std::string Name, ExprPtr Init, ExprPtr Body,
                     TypePtr Annot = nullptr, SourceLoc Loc = {});
  static ExprPtr fun(std::string Param, ExprPtr Body, TypePtr Annot = nullptr,
                     SourceLoc Loc = {});
  static ExprPtr app(ExprPtr Fn, ExprPtr Arg, SourceLoc Loc = {});
  static ExprPtr iff(ExprPtr Cond, ExprPtr Then, ExprPtr Else,
                     SourceLoc Loc = {});
  static ExprPtr match(ExprPtr Scrut, std::vector<MatchCase> Cases,
                       SourceLoc Loc = {});
  static ExprPtr oper(Op O, std::vector<ExprPtr> Args, SourceLoc Loc = {});
  static ExprPtr tuple(std::vector<ExprPtr> Elems, SourceLoc Loc = {});
  static ExprPtr proj(ExprPtr Operand, unsigned Index, SourceLoc Loc = {});
  static ExprPtr record(std::vector<std::string> Labels,
                        std::vector<ExprPtr> Elems, SourceLoc Loc = {});
  static ExprPtr recordUpdate(ExprPtr Base, std::vector<std::string> Labels,
                              std::vector<ExprPtr> Elems, SourceLoc Loc = {});
  static ExprPtr field(ExprPtr Operand, std::string Label, SourceLoc Loc = {});
  static ExprPtr some(ExprPtr Operand, SourceLoc Loc = {});
  static ExprPtr none(SourceLoc Loc = {});

  /// Convenience: builds nested App nodes, f a1 a2 ... an.
  static ExprPtr apps(ExprPtr Fn, std::vector<ExprPtr> CallArgs);
  /// Convenience: builds nested Fun nodes over \p Params.
  static ExprPtr funs(const std::vector<std::string> &Params, ExprPtr Body);
};

//===----------------------------------------------------------------------===//
// Declarations and programs
//===----------------------------------------------------------------------===//

enum class DeclKind : uint8_t {
  Let,       // let x = e          (includes init/trans/merge/assert)
  Symbolic,  // symbolic x : ty  |  symbolic x = e (typed by e, default value)
  Require,   // require e
  TypeAlias, // type t = ty
  Nodes,     // let nodes = N
  Edges,     // let edges = { u1=v1; ... }
};

struct Decl;
using DeclPtr = std::shared_ptr<Decl>;

struct Decl {
  DeclKind Kind = DeclKind::Let;
  SourceLoc Loc;
  std::string Name;  ///< Let / Symbolic / TypeAlias.
  TypePtr Ty;        ///< Symbolic/Let annotation or TypeAlias target.
  /// Let: number of parameters the surface declaration had; Ty (when set)
  /// annotates the result after that many arrows.
  unsigned ParamCount = 0;
  ExprPtr Body;      ///< Let / Require / Symbolic default.
  uint32_t NodeCount = 0;
  std::vector<std::pair<uint32_t, uint32_t>> EdgeList; ///< As written.

  static DeclPtr letDecl(std::string Name, ExprPtr Body, SourceLoc Loc = {});
  static DeclPtr symbolicDecl(std::string Name, TypePtr Ty, ExprPtr Default,
                              SourceLoc Loc = {});
  static DeclPtr requireDecl(ExprPtr Body, SourceLoc Loc = {});
  static DeclPtr typeAlias(std::string Name, TypePtr Ty, SourceLoc Loc = {});
  static DeclPtr nodesDecl(uint32_t N, SourceLoc Loc = {});
  static DeclPtr edgesDecl(std::vector<std::pair<uint32_t, uint32_t>> Edges,
                           SourceLoc Loc = {});
};

/// A parsed (and possibly type-checked) NV program.
///
/// The routing semantics of the program is given by the required
/// declarations of Fig. 8: nodes, edges, init, trans, merge, and optionally
/// assert, plus any symbolic/require declarations.
struct Program {
  std::vector<DeclPtr> Decls;

  /// Set by the type checker: the message/attribute type alpha.
  TypePtr AttrType;

  uint32_t numNodes() const;

  /// Links exactly as declared (each link is an undirected adjacency).
  std::vector<std::pair<uint32_t, uint32_t>> links() const;

  /// Directed edges over which `trans` runs: both orientations of every
  /// declared link, deduplicated, sorted.
  std::vector<std::pair<uint32_t, uint32_t>> directedEdges() const;

  /// First Let declaration named \p Name, or null.
  const Decl *findLet(const std::string &Name) const;
  /// All symbolic declarations in order.
  std::vector<const Decl *> symbolics() const;
  /// All require declarations in order.
  std::vector<const Decl *> requires_() const;

  const Decl *initDecl() const { return findLet("init"); }
  const Decl *transDecl() const { return findLet("trans"); }
  const Decl *mergeDecl() const { return findLet("merge"); }
  const Decl *assertDecl() const { return findLet("assert"); }
};

//===----------------------------------------------------------------------===//
// Generic traversal helpers
//===----------------------------------------------------------------------===//

/// Calls \p Fn on every sub-expression of \p E (including \p E), pre-order.
void forEachExpr(const ExprPtr &E, const std::function<void(const ExprPtr &)> &Fn);

/// Structural equality of expressions (alpha-sensitive; literals, names and
/// shapes must match). Used by tests and by partial evaluation.
bool exprEquals(const ExprPtr &A, const ExprPtr &B);

} // namespace nv

#endif // NV_CORE_AST_H
