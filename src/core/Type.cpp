//===- Type.cpp - NV types ------------------------------------------------===//

#include "core/Type.h"

#include "support/Fatal.h"

#include <atomic>

using namespace nv;

TypePtr Type::boolTy() {
  static TypePtr T = std::make_shared<Type>(TypeKind::Bool);
  return T;
}

TypePtr Type::intTy(unsigned Width) {
  if (Width == 0 || Width > 64)
    fatalError("int width must be between 1 and 64, got " +
               std::to_string(Width));
  auto T = std::make_shared<Type>(TypeKind::Int);
  T->Width = Width;
  return T;
}

TypePtr Type::nodeTy() {
  static TypePtr T = std::make_shared<Type>(TypeKind::Node);
  return T;
}

TypePtr Type::edgeTy() {
  static TypePtr T = std::make_shared<Type>(TypeKind::Edge);
  return T;
}

TypePtr Type::optionTy(TypePtr Elem) {
  auto T = std::make_shared<Type>(TypeKind::Option);
  T->Elems.push_back(std::move(Elem));
  return T;
}

TypePtr Type::tupleTy(std::vector<TypePtr> Elems) {
  if (Elems.size() < 2)
    fatalError("tuple types need at least two components");
  auto T = std::make_shared<Type>(TypeKind::Tuple);
  T->Elems = std::move(Elems);
  return T;
}

TypePtr Type::recordTy(std::vector<std::string> Labels,
                       std::vector<TypePtr> Elems) {
  if (Labels.size() != Elems.size() || Labels.empty())
    fatalError("malformed record type");
  auto T = std::make_shared<Type>(TypeKind::Record);
  T->Labels = std::move(Labels);
  T->Elems = std::move(Elems);
  return T;
}

TypePtr Type::dictTy(TypePtr Key, TypePtr Value) {
  auto T = std::make_shared<Type>(TypeKind::Dict);
  T->Elems.push_back(std::move(Key));
  T->Elems.push_back(std::move(Value));
  return T;
}

TypePtr Type::arrowTy(TypePtr Param, TypePtr Result) {
  auto T = std::make_shared<Type>(TypeKind::Arrow);
  T->Elems.push_back(std::move(Param));
  T->Elems.push_back(std::move(Result));
  return T;
}

TypePtr Type::varTy() {
  static std::atomic<int> NextVarId{0};
  auto T = std::make_shared<Type>(TypeKind::Var);
  T->VarId = NextVarId++;
  return T;
}

int Type::labelIndex(const std::string &L) const {
  for (size_t I = 0; I < Labels.size(); ++I)
    if (Labels[I] == L)
      return static_cast<int>(I);
  return -1;
}

TypePtr nv::resolve(TypePtr T) {
  while (T && T->Kind == TypeKind::Var && T->Instance)
    T = T->Instance;
  return T;
}

bool nv::typeEquals(const TypePtr &RawA, const TypePtr &RawB) {
  TypePtr A = resolve(RawA);
  TypePtr B = resolve(RawB);
  if (A.get() == B.get())
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case TypeKind::Bool:
  case TypeKind::Node:
  case TypeKind::Edge:
    return true;
  case TypeKind::Int:
    return A->Width == B->Width;
  case TypeKind::Var:
    return A->VarId == B->VarId;
  case TypeKind::Record:
    if (A->Labels != B->Labels)
      return false;
    [[fallthrough]];
  case TypeKind::Option:
  case TypeKind::Tuple:
  case TypeKind::Dict:
  case TypeKind::Arrow: {
    if (A->Elems.size() != B->Elems.size())
      return false;
    for (size_t I = 0; I < A->Elems.size(); ++I)
      if (!typeEquals(A->Elems[I], B->Elems[I]))
        return false;
    return true;
  }
  }
  nv_unreachable("covered switch");
}

std::string nv::typeToString(const TypePtr &RawT) {
  TypePtr T = resolve(RawT);
  if (!T)
    return "<null>";
  switch (T->Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return T->Width == 32 ? "int" : ("int" + std::to_string(T->Width));
  case TypeKind::Node:
    return "node";
  case TypeKind::Edge:
    return "edge";
  case TypeKind::Option:
    return "option[" + typeToString(T->Elems[0]) + "]";
  case TypeKind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < T->Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += typeToString(T->Elems[I]);
    }
    return S + ")";
  }
  case TypeKind::Record: {
    std::string S = "{";
    for (size_t I = 0; I < T->Elems.size(); ++I) {
      if (I)
        S += "; ";
      S += T->Labels[I] + " : " + typeToString(T->Elems[I]);
    }
    return S + "}";
  }
  case TypeKind::Dict:
    if (resolve(T->Elems[1])->Kind == TypeKind::Bool)
      return "set[" + typeToString(T->Elems[0]) + "]";
    return "dict[" + typeToString(T->Elems[0]) + ", " +
           typeToString(T->Elems[1]) + "]";
  case TypeKind::Arrow:
    return typeToString(T->Elems[0]) + " -> " + typeToString(T->Elems[1]);
  case TypeKind::Var:
    return "'a" + std::to_string(T->VarId);
  }
  nv_unreachable("covered switch");
}

bool nv::isFiniteType(const TypePtr &RawT) {
  TypePtr T = resolve(RawT);
  if (!T)
    return false;
  switch (T->Kind) {
  case TypeKind::Bool:
  case TypeKind::Int:
  case TypeKind::Node:
  case TypeKind::Edge:
    return true;
  case TypeKind::Option:
  case TypeKind::Tuple:
  case TypeKind::Record:
    for (const TypePtr &E : T->Elems)
      if (!isFiniteType(E))
        return false;
    return true;
  case TypeKind::Dict:
  case TypeKind::Arrow:
  case TypeKind::Var:
    return false;
  }
  nv_unreachable("covered switch");
}

bool nv::isClosedType(const TypePtr &RawT) {
  TypePtr T = resolve(RawT);
  if (!T)
    return false;
  if (T->Kind == TypeKind::Var)
    return false;
  for (const TypePtr &E : T->Elems)
    if (!isClosedType(E))
      return false;
  return true;
}

bool nv::isConcreteType(const TypePtr &RawT) {
  TypePtr T = resolve(RawT);
  if (!T)
    return false;
  switch (T->Kind) {
  case TypeKind::Bool:
  case TypeKind::Int:
  case TypeKind::Node:
  case TypeKind::Edge:
    return true;
  case TypeKind::Option:
  case TypeKind::Tuple:
  case TypeKind::Record:
  case TypeKind::Dict:
    for (const TypePtr &E : T->Elems)
      if (!isConcreteType(E))
        return false;
    return true;
  case TypeKind::Arrow:
  case TypeKind::Var:
    return false;
  }
  nv_unreachable("covered switch");
}
