//===- Lexer.cpp - NV lexer -----------------------------------------------===//

#include "core/Lexer.h"

#include <cctype>

using namespace nv;

std::string Token::describe() const {
  switch (Kind) {
  case TokKind::Eof:
    return "<eof>";
  case TokKind::Ident:
    return "'" + Text + "'";
  case TokKind::IntLit:
    return "integer " + std::to_string(IntVal);
  case TokKind::NodeLit:
    return "node " + std::to_string(IntVal) + "n";
  case TokKind::String:
    return "\"" + Text + "\"";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Bar:
    return "'|'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Assign:
    return "':='";
  case TokKind::Underscore:
    return "'_'";
  case TokKind::Eq:
    return "'='";
  case TokKind::Neq:
    return "'<>'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  }
  return "<token>";
}

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Src, DiagnosticEngine &Diags)
      : Src(Src), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    for (;;) {
      skipTrivia();
      Token T = next();
      Toks.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Toks;
  }

private:
  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Off = 0) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc here() const { return {Line, Col}; }

  void skipTrivia() {
    for (;;) {
      if (atEnd())
        return;
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '(' && peek(1) == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        int Depth = 1;
        while (!atEnd() && Depth > 0) {
          if (peek() == '(' && peek(1) == '*') {
            advance();
            advance();
            ++Depth;
          } else if (peek() == '*' && peek(1) == ')') {
            advance();
            advance();
            --Depth;
          } else {
            advance();
          }
        }
        if (Depth > 0)
          Diags.error(Start, "unterminated comment");
        continue;
      }
      return;
    }
  }

  Token make(TokKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    SourceLoc Loc = here();
    if (atEnd())
      return make(TokKind::Eof, Loc);

    char C = peek();

    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(Loc);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdent(Loc);

    if (C == '"')
      return lexString(Loc);

    advance();
    switch (C) {
    case '(':
      return make(TokKind::LParen, Loc);
    case ')':
      return make(TokKind::RParen, Loc);
    case '{':
      return make(TokKind::LBrace, Loc);
    case '}':
      return make(TokKind::RBrace, Loc);
    case '[':
      return make(TokKind::LBracket, Loc);
    case ']':
      return make(TokKind::RBracket, Loc);
    case ',':
      return make(TokKind::Comma, Loc);
    case ';':
      return make(TokKind::Semi, Loc);
    case '.':
      return make(TokKind::Dot, Loc);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::OrOr, Loc);
      }
      return make(TokKind::Bar, Loc);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokKind::Assign, Loc);
      }
      return make(TokKind::Colon, Loc);
    case '-':
      if (peek() == '>') {
        advance();
        return make(TokKind::Arrow, Loc);
      }
      return make(TokKind::Minus, Loc);
    case '=':
      return make(TokKind::Eq, Loc);
    case '<':
      if (peek() == '>') {
        advance();
        return make(TokKind::Neq, Loc);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::Le, Loc);
      }
      return make(TokKind::Lt, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge, Loc);
      }
      return make(TokKind::Gt, Loc);
    case '+':
      return make(TokKind::Plus, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AndAnd, Loc);
      }
      Diags.error(Loc, "unexpected character '&'");
      return make(TokKind::AndAnd, Loc);
    case '!':
      return make(TokKind::Bang, Loc);
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      return next();
    }
  }

  Token lexNumber(SourceLoc Loc) {
    uint64_t V = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      V = V * 10 + static_cast<uint64_t>(advance() - '0');
    // Suffixes: 'n' node literal, 'uN' sized integer.
    if (peek() == 'n' &&
        !std::isalnum(static_cast<unsigned char>(peek(1)))) {
      advance();
      Token T = make(TokKind::NodeLit, Loc);
      T.IntVal = V;
      return T;
    }
    Token T = make(TokKind::IntLit, Loc);
    T.IntVal = V;
    if (peek() == 'u' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      advance();
      unsigned W = 0;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        W = W * 10 + static_cast<unsigned>(advance() - '0');
      if (W == 0 || W > 64) {
        Diags.error(Loc, "integer width must be between 1 and 64");
        W = 32;
      }
      T.Width = W;
    }
    return T;
  }

  Token lexIdent(SourceLoc Loc) {
    std::string S;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_' || peek() == '\''))
      S += advance();
    if (S == "_")
      return make(TokKind::Underscore, Loc);
    Token T = make(TokKind::Ident, Loc);
    T.Text = std::move(S);
    return T;
  }

  Token lexString(SourceLoc Loc) {
    advance(); // opening quote
    std::string S;
    while (!atEnd() && peek() != '"' && peek() != '\n')
      S += advance();
    if (atEnd() || peek() != '"')
      Diags.error(Loc, "unterminated string literal");
    else
      advance();
    Token T = make(TokKind::String, Loc);
    T.Text = std::move(S);
    return T;
  }
};

} // namespace

std::vector<Token> nv::lex(const std::string &Source, DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
