//===- Lexer.h - NV lexer ---------------------------------------*- C++ -*-===//
//
// Part of nv-cpp. Tokenizes NV surface syntax (Sec. 2 examples, Fig. 6).
//
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_LEXER_H
#define NV_CORE_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

enum class TokKind : uint8_t {
  Eof,
  Ident,   // identifiers and keywords (keywords resolved by the parser)
  IntLit,  // 5, 5u8
  NodeLit, // 5n
  String,  // "path" (used by include)
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  Bar,
  Arrow,     // ->
  Assign,    // :=
  Underscore,
  // Operators.
  Eq,        // =
  Neq,       // <>
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  AndAnd,
  OrOr,
  Bang,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    // Ident / String
  uint64_t IntVal = 0; // IntLit / NodeLit
  unsigned Width = 32; // IntLit: bit width from a uN suffix (default 32)

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(const char *S) const {
    return Kind == TokKind::Ident && Text == S;
  }
  std::string describe() const;
};

/// Tokenizes \p Source. Comments are OCaml-style nested (* ... *) plus
/// line comments starting with //. Appends an Eof token. Lexical errors go
/// to \p Diags; lexing continues past them so the parser can report more.
std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_CORE_LEXER_H
