//===- Parser.h - NV parser -------------------------------------*- C++ -*-===//
//
// Part of nv-cpp. Parses NV surface syntax into the AST of Ast.h.
//
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_PARSER_H
#define NV_CORE_PARSER_H

#include "core/Ast.h"
#include "support/Diagnostics.h"

#include <functional>
#include <optional>
#include <string>

namespace nv {

/// Resolves `include name` directives to NV source text; returns
/// std::nullopt when the name is unknown.
using IncludeResolver =
    std::function<std::optional<std::string>(const std::string &)>;

struct ParseOptions {
  /// Tried first; when it fails (or is unset) the built-in standard-model
  /// registry (core/Stdlib.h) is consulted.
  IncludeResolver Resolver;
};

/// Parses a whole NV program. Returns std::nullopt (after filing
/// diagnostics) when the source is malformed.
std::optional<Program> parseProgram(const std::string &Source,
                                    DiagnosticEngine &Diags,
                                    const ParseOptions &Opts = {});

/// Parses a single expression (testing convenience). Null on error.
ExprPtr parseExprString(const std::string &Source, DiagnosticEngine &Diags);

/// Parses a single type (testing convenience). Null on error.
TypePtr parseTypeString(const std::string &Source, DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_CORE_PARSER_H
