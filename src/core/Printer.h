//===- Printer.h - NV pretty printer ----------------------------*- C++ -*-===//
//
// Part of nv-cpp. Renders ASTs back to NV surface syntax; the output of
// printProgram re-parses to an equivalent program (round-trip tested).
//
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_PRINTER_H
#define NV_CORE_PRINTER_H

#include "core/Ast.h"

#include <string>

namespace nv {

/// Renders \p E in NV surface syntax. Parenthesizes conservatively.
std::string printExpr(const ExprPtr &E);

/// Renders a single declaration.
std::string printDecl(const DeclPtr &D);

/// Renders a whole program, one declaration per line.
std::string printProgram(const Program &P);

} // namespace nv

#endif // NV_CORE_PRINTER_H
