//===- Type.h - NV types ----------------------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NV type language of Fig. 6: sized integers, booleans, nodes, edges,
/// options, tuples, records, total dictionaries, arrows, and unification
/// variables used by the type checker.
///
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_TYPE_H
#define NV_CORE_TYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nv {

enum class TypeKind : uint8_t {
  Bool,
  Int,    ///< intN, N-bit unsigned wrap-around arithmetic (default N=32)
  Node,   ///< topology node; finite given a concrete topology
  Edge,   ///< topology edge, destructurable as a (node, node) pair
  Option, ///< option[T]
  Tuple,  ///< (T1, ..., Tn), n >= 2
  Record, ///< { l1 : T1; ...; ln : Tn }, labels stored sorted
  Dict,   ///< dict[K, V], a total map; set[K] is sugar for dict[K, bool]
  Arrow,  ///< T1 -> T2
  Var,    ///< unification variable (type checking only)
};

class Type;
using TypePtr = std::shared_ptr<Type>;

/// An NV type. Types are immutable after type checking; during inference,
/// TypeKind::Var nodes act as union-find cells via \c Instance.
class Type {
public:
  TypeKind Kind;

  /// Int: bit width (1..64).
  unsigned Width = 32;

  /// Children: Option -> {elem}; Tuple -> elems; Record -> field types
  /// (parallel to Labels); Dict -> {key, value}; Arrow -> {param, result}.
  std::vector<TypePtr> Elems;

  /// Record labels, sorted ascending; parallel to Elems.
  std::vector<std::string> Labels;

  /// Var: identity and union-find link (null when unbound).
  int VarId = -1;
  TypePtr Instance;

  explicit Type(TypeKind K) : Kind(K) {}

  // Shared constructors for base types; compound types get fresh nodes.
  static TypePtr boolTy();
  static TypePtr intTy(unsigned Width = 32);
  static TypePtr nodeTy();
  static TypePtr edgeTy();
  static TypePtr optionTy(TypePtr Elem);
  static TypePtr tupleTy(std::vector<TypePtr> Elems);
  static TypePtr recordTy(std::vector<std::string> Labels,
                          std::vector<TypePtr> Elems);
  static TypePtr dictTy(TypePtr Key, TypePtr Value);
  static TypePtr setTy(TypePtr Key) { return dictTy(std::move(Key), boolTy()); }
  static TypePtr arrowTy(TypePtr Param, TypePtr Result);
  static TypePtr varTy();

  /// Index of record label \p L, or -1 when absent.
  int labelIndex(const std::string &L) const;
};

/// Follows Instance links of bound unification variables to the
/// representative type. Never returns a bound Var.
TypePtr resolve(TypePtr T);

/// Structural type equality after resolving unification variables.
bool typeEquals(const TypePtr &A, const TypePtr &B);

/// Renders a type in NV surface syntax (e.g. "dict[(int,int5), option[bool]]").
std::string typeToString(const TypePtr &T);

/// True when the type contains no arrow, dict, or unresolved variable, i.e.
/// it can be encoded as a fixed-size bit vector (usable as a dict key or as
/// an SMT-translatable message component).
bool isFiniteType(const TypePtr &T);

/// True when the type contains no arrow or unresolved variable (dicts
/// allowed). Routing messages must satisfy this.
bool isConcreteType(const TypePtr &T);

/// True when the type contains no unresolved variable at all (arrows and
/// dicts allowed) — i.e. it prints as parseable surface syntax.
bool isClosedType(const TypePtr &T);

} // namespace nv

#endif // NV_CORE_TYPE_H
